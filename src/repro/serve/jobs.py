"""The batch-service job model: :class:`PlanJob` in, :class:`JobResult` out.

A job names one planning problem — ``(network, request set, K,
planner)`` — exactly the :func:`repro.pipeline.run_planner` signature.
Jobs referencing the *same* :class:`~repro.network.topology.WRSN`
object form a **group**: the service plans them against one shared
``PlanningContext``/distance cache instead of re-paying cold
construction per job.

On disk a batch is a JSON Lines file (``repro-job/1``): each line is a
job carrying its network inline (``"network"``), by reference to an
earlier line's ``"network_id"`` label (``"network_ref"``), or by
instance-file path (``"network_path"``). The loader resolves all three
to shared ``WRSN`` objects, so on-disk sharing becomes in-memory
grouping automatically. Results are written back as ``repro-result/1``
lines.

Byte-stable parity: :meth:`JobResult.parity_key` canonicalizes exactly
the deterministic fields (id, status, planner, K, delay, schedule,
error) — scheduling outputs, not scheduling diagnostics — which is
what the determinism suite compares across executors and worker
counts. Timings, attempt counts and cache counters legitimately vary
between runs and stay out of the key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.io import (
    JOB_FORMAT,
    RESULT_FORMAT,
    PathLike,
    dump_jsonl_line,
    load_wrsn,
    read_jsonl,
    wrsn_from_dict,
    wrsn_to_dict,
)
from repro.network.topology import WRSN


@dataclass(frozen=True)
class PlanJob:
    """One planning problem for the batch service.

    Attributes:
        network: the WRSN instance. Jobs holding the *same object*
            share one planning-context group.
        request_ids: the to-be-charged set ``V_s``.
        num_chargers: ``K``.
        planner: registered planner name.
        job_id: caller-chosen id echoed into the result; the service
            assigns ``"job-<index>"`` when empty.
    """

    network: WRSN
    request_ids: Tuple[int, ...]
    num_chargers: int
    planner: str = "Appro"
    job_id: str = ""

    def __post_init__(self) -> None:
        if self.num_chargers <= 0:
            raise ValueError(
                f"num_chargers must be positive, got {self.num_chargers}"
            )
        if not self.request_ids:
            raise ValueError("a PlanJob needs a non-empty request set")


@dataclass
class JobResult:
    """Structured outcome of one job, failed or not.

    ``status`` is ``"ok"``, ``"error"`` or ``"timeout"``; failed jobs
    carry ``error`` text and ``None`` scheduling fields. ``cache``
    holds the worker-side context counters (``context_reused`` plus the
    context's memo/distance stats) and ``plan_s``/``total_s`` the
    in-worker and end-to-end seconds.
    """

    job_id: str
    index: int
    status: str
    planner: str
    num_chargers: int
    group_key: str = ""
    attempts: int = 1
    longest_delay_s: Optional[float] = None
    schedule: Optional[Dict] = None
    error: Optional[str] = None
    context_reused: bool = False
    plan_s: float = 0.0
    total_s: float = 0.0
    cache: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def parity_key(self) -> str:
        """Canonical JSON of the deterministic fields only.

        Two runs of the same batch — sequential, pooled, any worker
        count — must produce byte-identical parity keys in the same
        order.
        """
        return dump_jsonl_line(
            {
                "job_id": self.job_id,
                "index": self.index,
                "status": self.status,
                "planner": self.planner,
                "num_chargers": self.num_chargers,
                "longest_delay_s": self.longest_delay_s,
                "schedule": self.schedule,
                "error": self.error,
            }
        )

    def to_dict(self) -> Dict:
        """The full ``repro-result/1`` record."""
        return {
            "format": RESULT_FORMAT,
            "id": self.job_id,
            "index": self.index,
            "status": self.status,
            "planner": self.planner,
            "num_chargers": self.num_chargers,
            "group": self.group_key,
            "attempts": self.attempts,
            "longest_delay_s": self.longest_delay_s,
            "schedule": self.schedule,
            "error": self.error,
            "context_reused": self.context_reused,
            "plan_s": self.plan_s,
            "total_s": self.total_s,
            "cache": self.cache,
        }


# ----------------------------------------------------------------------
# JSONL job files
# ----------------------------------------------------------------------

def job_to_dict(
    job: PlanJob,
    network_id: Optional[str] = None,
    network_ref: Optional[str] = None,
) -> Dict:
    """One ``repro-job/1`` record.

    Pass ``network_ref`` to point at an earlier record's
    ``network_id`` instead of inlining the network again; pass
    ``network_id`` to label this record's inline network for later
    references.
    """
    record: Dict = {
        "format": JOB_FORMAT,
        "id": job.job_id,
        "planner": job.planner,
        "num_chargers": job.num_chargers,
        "requests": list(job.request_ids),
    }
    if network_ref is not None:
        record["network_ref"] = network_ref
    else:
        record["network"] = wrsn_to_dict(job.network)
        if network_id is not None:
            record["network_id"] = network_id
    return record


def jobs_to_jsonl(jobs: Sequence[PlanJob]) -> str:
    """Serialize jobs to JSONL, inlining each distinct network once.

    Jobs sharing a network object become ``network_ref`` lines, so the
    on-disk file round-trips back into the same sharing structure.
    """
    lines: List[str] = []
    seen: Dict[int, str] = {}
    for i, job in enumerate(jobs):
        key = id(job.network)
        if key in seen:
            record = job_to_dict(job, network_ref=seen[key])
        else:
            seen[key] = f"net-{len(seen)}"
            record = job_to_dict(job, network_id=seen[key])
        lines.append(dump_jsonl_line(record))
    return "".join(line + "\n" for line in lines)


def save_jobs(jobs: Sequence[PlanJob], path: PathLike) -> None:
    """Write a batch to a ``repro-job/1`` JSONL file."""
    Path(path).write_text(jobs_to_jsonl(jobs))


class JobStreamReader:
    """Incremental ``repro-job/1`` record reader.

    Turns one parsed record at a time into a :class:`PlanJob` while
    carrying the cross-record state that makes network sharing work:
    ``network_id`` labels bind for later ``network_ref`` lines, and
    repeated ``network_path`` entries resolve to one shared ``WRSN``
    object. The batch loaders and the long-lived daemon transport both
    drive this class — the daemon keeps one reader per connection, so
    a stream of jobs can inline each network once and reference it for
    the rest of the session.
    """

    def __init__(self, base_dir: Optional[PathLike] = None):
        self.base_dir = base_dir
        self._by_label: Dict[str, WRSN] = {}
        self._by_path: Dict[str, WRSN] = {}

    def job_from_record(self, record: Dict, lineno: int) -> PlanJob:
        """Materialize one record; ``lineno`` is 1-based for messages.

        Raises:
            ValueError: on a wrong format tag, a dangling
                ``network_ref``, a record with no network at all, an
                empty request set, or malformed field values.
        """
        if not isinstance(record, dict):
            raise ValueError(
                f"job line {lineno}: expected a JSON object, got "
                f"{type(record).__name__}"
            )
        if record.get("format") != JOB_FORMAT:
            raise ValueError(
                f"job line {lineno}: not a {JOB_FORMAT} record: "
                f"format={record.get('format')!r}"
            )
        if "network" in record:
            network = wrsn_from_dict(record["network"])
            label = record.get("network_id")
            if label is not None:
                self._by_label[str(label)] = network
        elif "network_ref" in record:
            label = str(record["network_ref"])
            if label not in self._by_label:
                raise ValueError(
                    f"job line {lineno}: network_ref {label!r} does not "
                    f"match any earlier network_id"
                )
            network = self._by_label[label]
        elif "network_path" in record:
            raw_path = str(record["network_path"])
            resolved = (
                str(Path(self.base_dir) / raw_path)
                if self.base_dir is not None
                and not Path(raw_path).is_absolute()
                else raw_path
            )
            if resolved not in self._by_path:
                self._by_path[resolved] = load_wrsn(resolved)
            network = self._by_path[resolved]
        else:
            raise ValueError(
                f"job line {lineno}: needs one of 'network', "
                f"'network_ref' or 'network_path'"
            )
        requests = record.get("requests")
        if not requests:
            raise ValueError(
                f"job line {lineno}: needs a non-empty 'requests' list"
            )
        return PlanJob(
            network=network,
            request_ids=tuple(int(r) for r in requests),
            num_chargers=int(record.get("num_chargers", 2)),
            planner=str(record.get("planner", "Appro")),
            job_id=str(record.get("id") or f"job-{lineno - 1}"),
        )


def jobs_from_records(
    records: Sequence[Dict], base_dir: Optional[PathLike] = None
) -> List[PlanJob]:
    """Materialize jobs from parsed ``repro-job/1`` records.

    Network sharing is preserved: every ``network_ref`` (and repeated
    ``network_path``) resolves to the same ``WRSN`` object, so the
    service groups those jobs onto one shared context.

    Raises:
        ValueError: on a wrong format tag, a dangling ``network_ref``,
            a record with no network at all, or an empty request set.
    """
    reader = JobStreamReader(base_dir=base_dir)
    return [
        reader.job_from_record(record, lineno)
        for lineno, record in enumerate(records, start=1)
    ]


@dataclass(frozen=True)
class JobLineError:
    """One rejected line of a leniently-read job stream.

    Attributes:
        lineno: 1-based line number in the source stream.
        error: what was wrong with it (JSON damage or a record-level
            validation failure).
    """

    lineno: int
    error: str

    def to_result_dict(self) -> Dict:
        """A structured ``repro-result/1`` error record for the line.

        Lets stream consumers emit one output line per input line even
        for input that never became a job.
        """
        return {
            "format": RESULT_FORMAT,
            "id": f"line-{self.lineno}",
            "index": self.lineno - 1,
            "status": "error",
            "planner": None,
            "num_chargers": None,
            "group": "",
            "attempts": 0,
            "longest_delay_s": None,
            "schedule": None,
            "error": self.error,
            "context_reused": False,
            "plan_s": 0.0,
            "total_s": 0.0,
            "cache": {},
        }


def jobs_from_lines(
    lines: Iterable[str], base_dir: Optional[PathLike] = None
) -> Tuple[List[Tuple[int, PlanJob]], List[JobLineError]]:
    """Lenient line-by-line job parsing: damage is reported, not fatal.

    Each non-blank line is JSON-decoded and materialized independently;
    a malformed line (broken JSON, wrong format tag, missing network,
    bad field values) becomes a :class:`JobLineError` while later lines
    keep parsing — including ``network_ref`` lines pointing at labels
    bound *before* the damage.

    Returns:
        ``(jobs, errors)`` where ``jobs`` pairs each parsed job with
        its 1-based line number, and ``errors`` lists the rejected
        lines in stream order.
    """
    reader = JobStreamReader(base_dir=base_dir)
    jobs: List[Tuple[int, PlanJob]] = []
    errors: List[JobLineError] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(
                JobLineError(lineno, f"malformed JSON: {exc}")
            )
            continue
        try:
            jobs.append((lineno, reader.job_from_record(record, lineno)))
        except (ValueError, TypeError, KeyError) as exc:
            errors.append(JobLineError(lineno, str(exc)))
    return jobs, errors


def load_jobs_lenient(
    path: PathLike,
) -> Tuple[List[Tuple[int, PlanJob]], List[JobLineError]]:
    """Leniently read a ``repro-job/1`` JSONL file.

    The malformed-input-tolerant counterpart of :func:`load_jobs`:
    damaged lines come back as :class:`JobLineError` records instead
    of aborting the whole file.
    """
    with open(path) as fh:
        return jobs_from_lines(
            fh, base_dir=Path(path).resolve().parent
        )


def load_jobs(path: PathLike) -> List[PlanJob]:
    """Read a ``repro-job/1`` JSONL file into jobs.

    Relative ``network_path`` entries resolve against the job file's
    directory.
    """
    return jobs_from_records(
        read_jsonl(path), base_dir=Path(path).resolve().parent
    )


__all__ = [
    "JobLineError",
    "JobResult",
    "JobStreamReader",
    "PlanJob",
    "job_to_dict",
    "jobs_from_lines",
    "jobs_from_records",
    "jobs_to_jsonl",
    "load_jobs",
    "load_jobs_lenient",
    "save_jobs",
]
