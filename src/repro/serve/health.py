"""Worker health supervision for the planning daemon.

Two cooperating pieces keep a long-lived daemon alive through worker
carnage that would be fatal to a naive always-on pool:

* :class:`SupervisedPool` — a *persistent* ``ProcessPoolExecutor``
  wrapper. Unlike :func:`repro.serve.pool.run_tasks` (which builds and
  tears down an executor per batch), the supervised pool keeps its
  workers — and therefore their warm
  :data:`repro.serve.workers._GROUP_CACHE` context groups — alive
  across requests. Per-task timeouts reuse the exact worker-side
  watchdog semantics of the batch pool (``_pool_entry`` /
  :func:`~repro.serve.pool.call_with_timeout`), so a stuck task can
  never wedge the daemon. A dead worker (``BrokenProcessPool``) fails
  only the tasks in flight; the executor is rebuilt once per breakage,
  coordinated by a generation counter so concurrent runner threads
  hitting the same corpse rebuild once, not once each.

* :class:`CircuitBreaker` — the classic closed / open / half-open
  state machine over those breakages. Repeated rebuilds trip the
  breaker; while open, the daemon stops feeding the pool (routing
  admitted jobs to a degraded in-process path instead) for a cooldown
  that backs off exponentially — ``cooldown_s · 2^(trips-1)``, capped
  — then lets exactly one probe through half-open. A success closes
  the breaker and resets the backoff; a failure re-opens it with the
  next longer cooldown.

The breaker takes an injectable monotonic ``clock`` so its timing
behaviour is testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Optional

from repro.serve.pool import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_POOL_BROKEN,
    TaskOutcome,
    _pool_entry,
)

#: Breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Trip after repeated failures; recover via a half-open probe.

    Args:
        failure_threshold: consecutive failures that trip the breaker.
        cooldown_s: base cooldown after the first trip, seconds.
        cooldown_cap_s: upper bound on the backed-off cooldown.
        clock: monotonic time source (injectable for tests).

    Thread-safe: all transitions happen under an internal lock.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        cooldown_cap_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold <= 0:
            raise ValueError(
                f"failure_threshold must be positive, got "
                f"{failure_threshold}"
            )
        if cooldown_s <= 0 or cooldown_cap_s < cooldown_s:
            raise ValueError(
                f"need 0 < cooldown_s <= cooldown_cap_s, got "
                f"{cooldown_s} / {cooldown_cap_s}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.cooldown_cap_s = cooldown_cap_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._trips = 0
        self._opened_at = 0.0

    # ------------------------------------------------------------------

    def _current_cooldown_s(self) -> float:
        if self._trips == 0:
            return 0.0
        return min(
            self.cooldown_s * (2.0 ** (self._trips - 1)),
            self.cooldown_cap_s,
        )

    def allow(self) -> bool:
        """May the protected resource be used right now?

        While open, returns ``False`` until the cooldown elapses, then
        transitions to half-open and admits one probe; in half-open,
        further calls are refused until the probe reports back.
        """
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                elapsed = self._clock() - self._opened_at
                if elapsed >= self._current_cooldown_s():
                    self._state = BREAKER_HALF_OPEN
                    return True
                return False
            return False  # half-open: probe already in flight

    def record_success(self) -> None:
        """The protected call worked: close and reset the backoff."""
        with self._lock:
            self._state = BREAKER_CLOSED
            self._consecutive_failures = 0
            self._trips = 0

    def record_failure(self) -> None:
        """The protected call failed; trip when the threshold is hit.

        A failure while half-open re-opens immediately with the next
        longer cooldown.
        """
        with self._lock:
            self._consecutive_failures += 1
            if self._state == BREAKER_HALF_OPEN:
                self._trip()
            elif (
                self._state == BREAKER_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        self._state = BREAKER_OPEN
        self._trips += 1
        self._opened_at = self._clock()

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def status(self) -> Dict[str, Any]:
        """Snapshot for the daemon's status endpoint."""
        with self._lock:
            cooldown = self._current_cooldown_s()
            remaining = 0.0
            if self._state == BREAKER_OPEN:
                remaining = max(
                    0.0, cooldown - (self._clock() - self._opened_at)
                )
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "trips": self._trips,
                "cooldown_s": cooldown,
                "cooldown_remaining_s": remaining,
            }


class SupervisedPool:
    """A persistent, self-healing worker pool for one task function.

    Args:
        fn: a picklable **module-level** callable of one payload
            argument (the same contract as
            :func:`repro.serve.pool.run_tasks`, enforced by lint rule
            R10).
        workers: worker process count. ``1`` executes in the calling
            thread with no executor at all — the warm context cache
            then lives in the daemon process itself.
        mp_context: multiprocessing start method; ``None`` = platform
            default.
        timeout_s: per-task execution bound enforced inside the worker.
        on_broken: callback fired once per pool breakage (after the
            rebuild), e.g. ``breaker.record_failure``.

    Call :meth:`run_one` from any number of runner threads; each call
    blocks until its task has a terminal outcome.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        workers: int = 1,
        mp_context: Optional[str] = None,
        timeout_s: Optional[float] = None,
        on_broken: Optional[Callable[[], None]] = None,
    ):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.fn = fn
        self.workers = workers
        self.timeout_s = timeout_s
        self.mp_context = mp_context
        self.on_broken = on_broken
        self._lock = threading.Lock()
        self._executor = None
        self._generation = 0
        self._closed = False
        self._rebuilds = 0

    # ------------------------------------------------------------------

    def _make_executor(self):
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        context = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context is not None
            else None
        )
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context
        )

    def _ensure_executor(self):
        """The live executor and its generation, creating on demand."""
        with self._lock:
            if self._closed:
                raise RuntimeError("SupervisedPool is closed")
            if self._executor is None:
                self._executor = self._make_executor()
            return self._executor, self._generation

    def _handle_broken(self, generation: int) -> None:
        """Rebuild after a breakage — once per generation, not per
        thread that observed it."""
        fire = False
        with self._lock:
            if self._closed or generation != self._generation:
                return  # another thread already rebuilt this corpse
            executor, self._executor = self._executor, None
            self._generation += 1
            self._rebuilds += 1
            fire = True
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        if fire and self.on_broken is not None:
            self.on_broken()

    # ------------------------------------------------------------------

    def run_one(self, payload: Any, index: int = 0) -> TaskOutcome:
        """Execute one payload; always returns a terminal outcome.

        A worker death comes back as a ``"pool-broken"`` outcome for
        *this* task (the caller decides whether to retry, degrade or
        give up); the pool itself has already been rebuilt for the
        next caller by the time this returns.
        """
        outcome = TaskOutcome(index=index, status=STATUS_ERROR)
        start = time.perf_counter()
        try:
            if self.workers == 1:
                status, value = _pool_entry(
                    self.fn, payload, self.timeout_s
                )
            else:
                executor, generation = self._ensure_executor()
                future = executor.submit(
                    _pool_entry, self.fn, payload, self.timeout_s
                )
                try:
                    status, value = future.result()
                except BrokenProcessPool:
                    self._handle_broken(generation)
                    status, value = (
                        STATUS_POOL_BROKEN,
                        "worker process died (BrokenProcessPool); "
                        "pool rebuilt",
                    )
        except RuntimeError as exc:
            status, value = STATUS_ERROR, str(exc)
        except Exception as exc:  # unpicklable payload/result etc.
            status, value = STATUS_ERROR, f"{type(exc).__name__}: {exc}"
        outcome.attempts = 1
        outcome.elapsed_s = time.perf_counter() - start
        outcome.status = status
        if status == STATUS_OK:
            outcome.value, outcome.error = value, None
        else:
            outcome.value, outcome.error = None, str(value)
        return outcome

    # ------------------------------------------------------------------

    @property
    def rebuilds(self) -> int:
        with self._lock:
            return self._rebuilds

    def close(self) -> None:
        """Shut the executor down; further :meth:`run_one` calls error."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "SupervisedPool",
]
