"""Batch planning service over a cache-sharing worker pool.

Many planning problems, one call::

    from repro.serve import PlanJob, PlanningService

    jobs = [
        PlanJob(network, requests, num_chargers=k, planner=name)
        for k in (1, 2, 3)
        for name in ("Appro", "K-minMax")
    ]
    service = PlanningService(workers=4, timeout_s=60.0, max_retries=1)
    results = service.run(jobs)          # one JobResult per job, in order
    print(service.stats())

Jobs sharing a network object form a group and reuse one warm
:class:`~repro.pipeline.PlanningContext` (and distance cache) inside
whichever worker runs them; failures come back as structured results
instead of exceptions; and for any worker count the batch's ordered
:meth:`~repro.serve.jobs.JobResult.parity_key` sequence is
byte-identical to the sequential run's. On disk, batches are
``repro-job/1`` JSONL files (:func:`~repro.serve.jobs.load_jobs`) and
results ``repro-result/1`` lines — the ``repro serve`` CLI wires the
two together.
"""

from repro.serve.admission import (
    AdmissionPolicy,
    REJECT_DEADLINE,
    REJECT_PAYLOAD,
    REJECT_QUEUE_FULL,
    REJECT_REASONS,
    REJECT_SHUTDOWN,
    Rejection,
    STATUS_REJECTED,
    ServiceTimeEstimator,
)
from repro.serve.daemon import (
    DAEMON_STATUS_FORMAT,
    DaemonConfig,
    JobTicket,
    PlanningDaemon,
    geometry_digest,
    network_digest,
)
from repro.serve.health import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    SupervisedPool,
)
from repro.serve.jobs import (
    JobLineError,
    JobResult,
    JobStreamReader,
    PlanJob,
    job_to_dict,
    jobs_from_lines,
    jobs_from_records,
    jobs_to_jsonl,
    load_jobs,
    load_jobs_lenient,
    save_jobs,
)
from repro.serve.pool import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_POOL_BROKEN,
    STATUS_TIMEOUT,
    PoolConfig,
    TaskOutcome,
    TaskTimeout,
    call_with_timeout,
    run_tasks,
)
from repro.serve.sanitize import (
    Divergence,
    SanitizeReport,
    build_corpus,
    run_matrix,
    sanitize_corpus,
)
from repro.serve.service import (
    REQUIRED_VALUE_KEYS,
    PlanningService,
    result_from_outcome,
)
from repro.serve.transport import (
    DaemonSession,
    DaemonSocketServer,
    make_socket_server,
    request,
    request_status,
    serve_stream,
)
from repro.serve.workers import execute_plan_job, reset_worker_cache

__all__ = [
    "AdmissionPolicy",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "DAEMON_STATUS_FORMAT",
    "DaemonConfig",
    "DaemonSession",
    "DaemonSocketServer",
    "Divergence",
    "JobLineError",
    "JobResult",
    "JobStreamReader",
    "JobTicket",
    "PlanJob",
    "PlanningDaemon",
    "PlanningService",
    "PoolConfig",
    "REJECT_DEADLINE",
    "REJECT_PAYLOAD",
    "REJECT_QUEUE_FULL",
    "REJECT_REASONS",
    "REJECT_SHUTDOWN",
    "REQUIRED_VALUE_KEYS",
    "Rejection",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_POOL_BROKEN",
    "STATUS_REJECTED",
    "STATUS_TIMEOUT",
    "SanitizeReport",
    "ServiceTimeEstimator",
    "SupervisedPool",
    "TaskOutcome",
    "TaskTimeout",
    "build_corpus",
    "call_with_timeout",
    "execute_plan_job",
    "job_to_dict",
    "jobs_from_lines",
    "jobs_from_records",
    "jobs_to_jsonl",
    "load_jobs",
    "load_jobs_lenient",
    "make_socket_server",
    "geometry_digest",
    "network_digest",
    "request",
    "request_status",
    "reset_worker_cache",
    "result_from_outcome",
    "run_matrix",
    "run_tasks",
    "sanitize_corpus",
    "save_jobs",
    "serve_stream",
]
