"""Batch planning service over a cache-sharing worker pool.

Many planning problems, one call::

    from repro.serve import PlanJob, PlanningService

    jobs = [
        PlanJob(network, requests, num_chargers=k, planner=name)
        for k in (1, 2, 3)
        for name in ("Appro", "K-minMax")
    ]
    service = PlanningService(workers=4, timeout_s=60.0, max_retries=1)
    results = service.run(jobs)          # one JobResult per job, in order
    print(service.stats())

Jobs sharing a network object form a group and reuse one warm
:class:`~repro.pipeline.PlanningContext` (and distance cache) inside
whichever worker runs them; failures come back as structured results
instead of exceptions; and for any worker count the batch's ordered
:meth:`~repro.serve.jobs.JobResult.parity_key` sequence is
byte-identical to the sequential run's. On disk, batches are
``repro-job/1`` JSONL files (:func:`~repro.serve.jobs.load_jobs`) and
results ``repro-result/1`` lines — the ``repro serve`` CLI wires the
two together.
"""

from repro.serve.jobs import (
    JobResult,
    PlanJob,
    job_to_dict,
    jobs_from_records,
    jobs_to_jsonl,
    load_jobs,
    save_jobs,
)
from repro.serve.pool import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    PoolConfig,
    TaskOutcome,
    TaskTimeout,
    call_with_timeout,
    run_tasks,
)
from repro.serve.sanitize import (
    Divergence,
    SanitizeReport,
    build_corpus,
    run_matrix,
    sanitize_corpus,
)
from repro.serve.service import REQUIRED_VALUE_KEYS, PlanningService
from repro.serve.workers import execute_plan_job, reset_worker_cache

__all__ = [
    "Divergence",
    "JobResult",
    "PlanJob",
    "PlanningService",
    "PoolConfig",
    "REQUIRED_VALUE_KEYS",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "SanitizeReport",
    "TaskOutcome",
    "TaskTimeout",
    "build_corpus",
    "call_with_timeout",
    "execute_plan_job",
    "job_to_dict",
    "jobs_from_records",
    "jobs_to_jsonl",
    "load_jobs",
    "reset_worker_cache",
    "run_matrix",
    "run_tasks",
    "sanitize_corpus",
    "save_jobs",
]
