"""Runtime determinism sanitizer: replan a corpus under perturbation.

The static rules (R8–R11 in :mod:`repro.lint`) catch the *syntactic*
ways hash order, clocks or shared-cache pokes leak into planning
results. This module is the dynamic half of the same contract: it
replans one seeded job corpus in fresh interpreters under a matrix of
``PYTHONHASHSEED`` values × worker counts and byte-compares the
ordered :meth:`~repro.serve.jobs.JobResult.parity_key` streams. A
hash-seed divergence means some set/dict iteration order reached a
result field (possibly through an attribute or call boundary the
static dataflow cannot see); a worker-count divergence means pool
scheduling leaked into job outcomes. Either way the report names the
first diverging job and field, so the offending code path is one grep
away.

``PYTHONHASHSEED`` only takes effect at interpreter startup, so each
matrix cell is a *subprocess* running this module in child mode
(``python -m repro.serve.sanitize``); the child loads the corpus,
runs the full :class:`~repro.serve.service.PlanningService` stack at
the requested worker count, and writes one parity line per job. The
parent (:func:`run_matrix`, wired to ``repro sanitize``) builds the
corpus, fans out the matrix, and diffs.

The ``--plugin`` hook imports a module inside the child before
planning — the test suite uses it to register a deliberately
order-dependent planner and prove the harness catches what the static
rule catches (``tests/test_sanitize.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.topology import random_wrsn
from repro.serve.jobs import JobResult, PlanJob, load_jobs, save_jobs

#: Default perturbation matrix: two interpreter hash seeds crossed
#: with serial, dual and quad worker pools.
DEFAULT_HASH_SEEDS: Tuple[int, ...] = (0, 1)
DEFAULT_WORKER_COUNTS: Tuple[int, ...] = (1, 2, 4)

#: Version tag of the JSON report ``repro sanitize`` emits.
REPORT_FORMAT = "repro-sanitize/1"


# ----------------------------------------------------------------------
# Corpus
# ----------------------------------------------------------------------


def build_corpus(
    num_networks: int = 3,
    num_sensors: int = 30,
    planners: Sequence[str] = ("Appro", "K-minMax", "K-EDF"),
    charger_counts: Sequence[int] = (1, 2, 3),
    seed: int = 0,
) -> List[PlanJob]:
    """A deterministic planning corpus for the sanitizer.

    ``num_networks`` seeded random networks (with seeded partial
    residuals, so the request sets exercise realistic charge times) ×
    two request sets each (everyone, and every other sensor) ×
    ``planners`` × ``charger_counts``. The defaults yield
    ``3 × 2 × 3 × 3 = 54`` jobs — above the ≥50 floor the acceptance
    matrix calls for — while staying replannable in seconds.
    """
    jobs: List[PlanJob] = []
    for n in range(num_networks):
        net_seed = 1000 * seed + 11 + n
        net = random_wrsn(num_sensors=num_sensors, seed=net_seed)
        rng = np.random.default_rng(net_seed + 1)
        net.set_residuals(
            {
                sid: float(rng.uniform(0.0, 0.2))
                * net.sensor(sid).capacity_j
                for sid in net.all_sensor_ids()
            }
        )
        everyone = tuple(net.all_sensor_ids())
        for tag, requests in (("all", everyone), ("half", everyone[::2])):
            for planner in planners:
                for k in charger_counts:
                    jobs.append(
                        PlanJob(
                            network=net,
                            request_ids=requests,
                            num_chargers=k,
                            planner=planner,
                            job_id=f"n{n}-{tag}-{planner}-k{k}",
                        )
                    )
    return jobs


def quick_corpus(seed: int = 0) -> List[PlanJob]:
    """The CI-smoke corpus: one small network, 12 jobs."""
    return build_corpus(
        num_networks=1,
        num_sensors=20,
        charger_counts=(1, 2),
        seed=seed,
    )


# ----------------------------------------------------------------------
# Child mode: one matrix cell in a fresh interpreter
# ----------------------------------------------------------------------


def run_child(
    jobs_path: str,
    workers: int,
    output_path: str,
    plugin: Optional[str] = None,
    daemon: bool = False,
) -> None:
    """Plan the corpus at one worker count; write parity lines.

    Runs inside the subprocess the parent spawned with the desired
    ``PYTHONHASHSEED``. ``plugin`` names a module to import first
    (extension planners register on import; fork-start pool workers
    inherit the registration). With ``daemon`` the corpus goes through
    the always-on :class:`~repro.serve.daemon.PlanningDaemon` instead
    of the batch service — the daemon's accepted results must be
    byte-identical to the serial planner's, so daemon cells diff
    against the same baseline as every other cell.
    """
    if plugin:
        import importlib

        importlib.import_module(plugin)

    jobs = load_jobs(jobs_path)
    if daemon:
        from repro.serve.daemon import DaemonConfig, PlanningDaemon

        config = DaemonConfig(
            workers=workers,
            max_queue=max(1000, len(jobs)),
            mp_context="fork" if workers > 1 else None,
        )
        with PlanningDaemon(config) as service:
            tickets = [service.submit(job) for job in jobs]
            for ticket in tickets:
                ticket.wait(600.0)
        results = [ticket.job_result for ticket in tickets]
        if any(result is None for result in results):
            raise RuntimeError(
                "daemon rejected jobs despite an oversized queue"
            )
    else:
        from repro.serve.service import PlanningService

        results = PlanningService(workers=workers).run(jobs)
    with open(output_path, "w") as fh:
        for result in results:
            fh.write(result.parity_key() + "\n")


def run_online_child(
    jobs_path: str,
    variant: str,
    output_path: str,
    plugin: Optional[str] = None,
) -> None:
    """One online-replanning matrix cell: perturb, then replan.

    For every job, a seeded per-job generator (``default_rng(7000 +
    index)``) marks roughly a third of the requests as "residuals
    changed" and draws their new residual energies — the stand-in for
    mid-round arrivals mutating the network between replans. The
    ``cold`` variant then plans on a fresh
    :class:`~repro.pipeline.PlanningContext`; the ``warm`` variant
    first plans on the *pre*-perturbation state to fill the context
    memos, applies the perturbation, calls
    :meth:`~repro.pipeline.PlanningContext.invalidate` with the changed
    sensors, and replans on the same context. Delta invalidation is
    correct exactly when every warm cell is byte-identical to the cold
    baseline.

    Jobs sharing a network object see each other's perturbations (the
    corpus reuses networks), but both variants process jobs in the same
    order with the same draws, so the pre-replan state of every job is
    identical across cells.
    """
    if plugin:
        import importlib

        importlib.import_module(plugin)

    from repro.io import schedule_to_dict
    from repro.pipeline import PlanningContext, run_planner

    jobs = load_jobs(jobs_path)
    lines: List[str] = []
    for index, job in enumerate(jobs):
        rng = np.random.default_rng(7000 + index)
        changed = [
            sid for sid in job.request_ids if rng.random() < 1.0 / 3.0
        ] or [job.request_ids[0]]
        fresh = {
            sid: float(rng.uniform(0.05, 0.2))
            * job.network.sensor(sid).capacity_j
            for sid in changed
        }
        if variant == "warm":
            context = PlanningContext(job.network, job.request_ids)
            run_planner(
                job.planner,
                job.network,
                job.request_ids,
                job.num_chargers,
                context=context,
            )
            job.network.set_residuals(fresh)
            context.invalidate(changed)
        else:
            job.network.set_residuals(fresh)
            context = PlanningContext(job.network, job.request_ids)
        planned = run_planner(
            job.planner,
            job.network,
            job.request_ids,
            job.num_chargers,
            context=context,
        )
        result = JobResult(
            job_id=job.job_id,
            index=index,
            status="ok",
            planner=job.planner,
            num_chargers=job.num_chargers,
            longest_delay_s=planned.longest_delay(),
            schedule=schedule_to_dict(planned, algorithm=job.planner),
        )
        lines.append(result.parity_key())
    Path(output_path).write_text(
        "".join(line + "\n" for line in lines)
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Child-mode entry point (``python -m repro.serve.sanitize``)."""
    parser = argparse.ArgumentParser(
        description="sanitizer child: plan a corpus, emit parity lines"
    )
    parser.add_argument("--jobs", required=True,
                        help="repro-job/1 JSONL corpus")
    parser.add_argument("--workers", type=int, required=True)
    parser.add_argument("--output", required=True,
                        help="parity-line output path")
    parser.add_argument("--plugin", default=None,
                        help="module to import before planning")
    parser.add_argument("--daemon", action="store_true",
                        help="route the corpus through PlanningDaemon")
    parser.add_argument("--online", choices=["cold", "warm"], default=None,
                        help="online-replanning cell: perturb residuals "
                        "per job, then cold-rebuild or delta-invalidate")
    args = parser.parse_args(argv)
    if args.online:
        run_online_child(args.jobs, args.online, args.output,
                         plugin=args.plugin)
    else:
        run_child(args.jobs, args.workers, args.output,
                  plugin=args.plugin, daemon=args.daemon)
    return 0


# ----------------------------------------------------------------------
# Parent mode: the perturbation matrix
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Divergence:
    """First point where one matrix cell left the baseline stream.

    Attributes:
        hash_seed: the cell's ``PYTHONHASHSEED``.
        workers: the cell's pool size.
        job_index: 0-based line where the streams first differ (or the
            length of the shorter stream when one is truncated).
        job_id: the baseline job id at that line, when available.
        field: first differing parity field, ``"missing-line"`` when a
            stream is short, ``"unparseable-line"`` on JSON damage.
        mode: which sweep the cell belongs to — ``"batch"`` for the
            hash-seed × worker matrix, ``"online-warm"``/
            ``"online-cold"`` for the online-replanning cells.
    """

    hash_seed: int
    workers: int
    job_index: int
    job_id: str
    field: str
    mode: str = "batch"

    def describe(self) -> str:
        tag = "" if self.mode == "batch" else f" {self.mode}"
        return (
            f"PYTHONHASHSEED={self.hash_seed} workers={self.workers}"
            f"{tag}: job {self.job_index} ({self.job_id or '?'}) "
            f"diverges in field {self.field!r}"
        )


@dataclass
class SanitizeReport:
    """Outcome of one :func:`run_matrix` sweep."""

    jobs: int
    baseline_hash_seed: int
    baseline_workers: int
    cells: List[Dict] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> Dict:
        return {
            "format": REPORT_FORMAT,
            "jobs": self.jobs,
            "baseline": {
                "hash_seed": self.baseline_hash_seed,
                "workers": self.baseline_workers,
            },
            "cells": self.cells,
            "ok": self.ok,
            "divergences": [
                {
                    "hash_seed": d.hash_seed,
                    "workers": d.workers,
                    "job_index": d.job_index,
                    "job_id": d.job_id,
                    "field": d.field,
                    "mode": d.mode,
                }
                for d in self.divergences
            ],
        }


def first_divergence(
    baseline_text: str,
    other_text: str,
    hash_seed: int,
    workers: int,
    mode: str = "batch",
) -> Divergence:
    """Locate the first diverging job and field between two streams."""
    base_lines = baseline_text.splitlines()
    other_lines = other_text.splitlines()
    for i, (base, other) in enumerate(zip(base_lines, other_lines)):
        if base == other:
            continue
        job_id = ""
        try:
            base_rec = json.loads(base)
            other_rec = json.loads(other)
        except json.JSONDecodeError:
            return Divergence(
                hash_seed, workers, i, job_id, "unparseable-line", mode
            )
        job_id = str(base_rec.get("job_id", ""))
        for key in sorted(set(base_rec) | set(other_rec)):
            if base_rec.get(key) != other_rec.get(key):
                return Divergence(
                    hash_seed, workers, i, job_id, key, mode
                )
        # Byte difference without a field difference: key order or
        # whitespace damage in the canonical encoder itself.
        return Divergence(hash_seed, workers, i, job_id, "encoding", mode)
    short = min(len(base_lines), len(other_lines))
    return Divergence(hash_seed, workers, short, "", "missing-line", mode)


def _child_env(hash_seed: int, extra_pythonpath: Sequence[str]) -> Dict:
    """Environment for one matrix cell's subprocess."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    # Make the running repro package importable in the child even when
    # the parent was launched via PYTHONPATH manipulation or a src
    # checkout. This module lives at <src>/repro/serve/sanitize.py.
    src_dir = str(Path(__file__).resolve().parents[2])
    parts = [*extra_pythonpath, src_dir]
    existing = env.get("PYTHONPATH")
    if existing:
        parts.append(existing)
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def run_matrix(
    jobs_path: str,
    hash_seeds: Sequence[int] = DEFAULT_HASH_SEEDS,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    plugin: Optional[str] = None,
    extra_pythonpath: Sequence[str] = (),
    timeout_s: float = 600.0,
    work_dir: Optional[str] = None,
    daemon_cells: bool = False,
    online_cells: bool = False,
) -> SanitizeReport:
    """Replan ``jobs_path`` across the perturbation matrix and diff.

    The first ``(hash_seed, workers)`` combination is the baseline;
    every other cell's parity stream is byte-compared against it and
    each mismatch is narrowed to its first diverging job and field.

    Args:
        jobs_path: a ``repro-job/1`` JSONL corpus.
        hash_seeds: ``PYTHONHASHSEED`` values to spawn children under.
        worker_counts: pool sizes to run each hash seed at.
        plugin: module for children to import before planning.
        extra_pythonpath: prepended to the children's ``PYTHONPATH``
            (how tests expose a plugin module).
        timeout_s: per-child wall bound.
        work_dir: where to keep the per-cell parity files (a temp
            directory when omitted).
        daemon_cells: additionally run every ``(hash_seed, workers)``
            cell through :class:`~repro.serve.daemon.PlanningDaemon`
            and diff it against the same baseline — the daemon's
            accepted results must be byte-identical to the batch
            service's.
        online_cells: additionally run a cold/warm online-replanning
            sweep per hash seed (:func:`run_online_child`): every job's
            residuals are perturbed and replanned either on a fresh
            context or through
            :meth:`~repro.pipeline.PlanningContext.invalidate`. These
            cells plan a *perturbed* corpus, so they diff against their
            own baseline (the first cold cell), not the batch one; a
            warm-vs-cold divergence means delta invalidation dropped
            too little state.

    Raises:
        RuntimeError: when a child exits non-zero — that is an
            infrastructure failure, not a determinism verdict.
    """
    num_jobs = len(load_jobs(jobs_path))
    report = SanitizeReport(
        jobs=num_jobs,
        baseline_hash_seed=hash_seeds[0],
        baseline_workers=worker_counts[0],
    )
    modes = (False, True) if daemon_cells else (False,)

    def sweep(out_dir: str) -> None:
        baseline_text: Optional[str] = None
        for hash_seed in hash_seeds:
            for workers in worker_counts:
                for daemon in modes:
                    tag = "-daemon" if daemon else ""
                    out_path = os.path.join(
                        out_dir,
                        f"parity-h{hash_seed}-w{workers}{tag}.jsonl",
                    )
                    cmd = [
                        sys.executable,
                        "-m",
                        "repro.serve.sanitize",
                        "--jobs", jobs_path,
                        "--workers", str(workers),
                        "--output", out_path,
                    ]
                    if plugin:
                        cmd += ["--plugin", plugin]
                    if daemon:
                        cmd += ["--daemon"]
                    proc = subprocess.run(
                        cmd,
                        env=_child_env(hash_seed, extra_pythonpath),
                        capture_output=True,
                        text=True,
                        timeout=timeout_s,
                    )
                    if proc.returncode != 0:
                        raise RuntimeError(
                            f"sanitizer child (PYTHONHASHSEED="
                            f"{hash_seed}, workers={workers}"
                            f"{', daemon' if daemon else ''}) failed "
                            f"with code {proc.returncode}:\n"
                            f"{proc.stderr[-2000:]}"
                        )
                    text = Path(out_path).read_text()
                    cell = {
                        "hash_seed": hash_seed,
                        "workers": workers,
                        "daemon": daemon,
                        "lines": len(text.splitlines()),
                    }
                    if baseline_text is None:
                        baseline_text = text
                        cell["baseline"] = True
                    elif text != baseline_text:
                        cell["baseline"] = False
                        report.divergences.append(
                            first_divergence(
                                baseline_text, text, hash_seed, workers
                            )
                        )
                    else:
                        cell["baseline"] = False
                    report.cells.append(cell)
        if online_cells:
            online_baseline: Optional[str] = None
            for hash_seed in hash_seeds:
                for variant in ("cold", "warm"):
                    out_path = os.path.join(
                        out_dir,
                        f"parity-h{hash_seed}-online-{variant}.jsonl",
                    )
                    cmd = [
                        sys.executable,
                        "-m",
                        "repro.serve.sanitize",
                        "--jobs", jobs_path,
                        "--workers", "1",
                        "--output", out_path,
                        "--online", variant,
                    ]
                    if plugin:
                        cmd += ["--plugin", plugin]
                    proc = subprocess.run(
                        cmd,
                        env=_child_env(hash_seed, extra_pythonpath),
                        capture_output=True,
                        text=True,
                        timeout=timeout_s,
                    )
                    if proc.returncode != 0:
                        raise RuntimeError(
                            f"sanitizer child (PYTHONHASHSEED="
                            f"{hash_seed}, online {variant}) failed "
                            f"with code {proc.returncode}:\n"
                            f"{proc.stderr[-2000:]}"
                        )
                    text = Path(out_path).read_text()
                    cell = {
                        "hash_seed": hash_seed,
                        "workers": 1,
                        "daemon": False,
                        "online": variant,
                        "lines": len(text.splitlines()),
                    }
                    if online_baseline is None:
                        online_baseline = text
                        cell["baseline"] = True
                    else:
                        cell["baseline"] = False
                        if text != online_baseline:
                            report.divergences.append(
                                first_divergence(
                                    online_baseline,
                                    text,
                                    hash_seed,
                                    1,
                                    mode=f"online-{variant}",
                                )
                            )
                    report.cells.append(cell)

    if work_dir is not None:
        sweep(work_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-sanitize-") as tmp:
            sweep(tmp)
    return report


def sanitize_corpus(
    jobs: Sequence[PlanJob],
    hash_seeds: Sequence[int] = DEFAULT_HASH_SEEDS,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    plugin: Optional[str] = None,
    extra_pythonpath: Sequence[str] = (),
    timeout_s: float = 600.0,
    daemon_cells: bool = False,
    online_cells: bool = False,
) -> SanitizeReport:
    """Save ``jobs`` to a temp corpus and :func:`run_matrix` over it."""
    with tempfile.TemporaryDirectory(prefix="repro-sanitize-") as tmp:
        jobs_path = os.path.join(tmp, "corpus.jsonl")
        save_jobs(jobs, jobs_path)
        return run_matrix(
            jobs_path,
            hash_seeds=hash_seeds,
            worker_counts=worker_counts,
            plugin=plugin,
            extra_pythonpath=extra_pythonpath,
            timeout_s=timeout_s,
            work_dir=tmp,
            daemon_cells=daemon_cells,
            online_cells=online_cells,
        )


__all__ = [
    "DEFAULT_HASH_SEEDS",
    "DEFAULT_WORKER_COUNTS",
    "Divergence",
    "REPORT_FORMAT",
    "SanitizeReport",
    "build_corpus",
    "first_divergence",
    "main",
    "quick_corpus",
    "run_child",
    "run_matrix",
    "run_online_child",
    "sanitize_corpus",
]


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
