"""The :class:`PlanningService`: batches of plan jobs, one result each.

The service sits between the planner pipeline and its batch consumers
(bench campaigns, the fault harness, the ``repro serve`` CLI). It takes
a list of :class:`~repro.serve.jobs.PlanJob` and:

1. **groups** jobs by network identity — jobs sharing a
   :class:`~repro.network.topology.WRSN` object get one group key, so
   whichever worker executes them reuses a warm
   ``PlanningContext``/distance cache (:mod:`repro.serve.workers`);
2. **fans out** over :func:`repro.serve.pool.run_tasks` — serial
   in-process by default, a ``ProcessPoolExecutor`` when
   ``workers > 1`` — with per-job timeout and bounded retry;
3. **returns** one structured :class:`~repro.serve.jobs.JobResult` per
   job, in job order, failed or not: a malformed worker payload, a
   raising planner or a timeout becomes an ``"error"``/``"timeout"``
   result and never aborts or contaminates sibling jobs.

Determinism contract: planners are pure functions of
``(network, requests, K)`` and context memoization is byte-transparent,
so for any worker count the ordered
:meth:`~repro.serve.jobs.JobResult.parity_key` sequence of a batch is
identical to the sequential run's — the property pinned by
``tests/test_serve_parity.py``.
"""

from __future__ import annotations

import itertools
import os
from typing import Callable, Dict, List, Optional, Sequence

from repro.pipeline import (
    PlanningContext,
    get_planner,
    snapshot_context,
)
from repro.serve.jobs import JobResult, PlanJob
from repro.serve.pool import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_POOL_BROKEN,
    STATUS_TIMEOUT,
    PoolConfig,
    TaskOutcome,
    run_tasks,
)
from repro.serve.workers import execute_plan_job

#: Keys a well-formed worker payload must carry; anything else is
#: reported as a malformed-payload error on that job alone.
REQUIRED_VALUE_KEYS = frozenset(
    {"schedule", "longest_delay_s", "context_reused", "plan_s", "cache"}
)

#: Distinguishes concurrent service runs inside one worker process, so
#: group caches never leak between runs (residuals may have changed).
_RUN_COUNTER = itertools.count()


def result_from_outcome(
    job: PlanJob, index: int, group_key: str, outcome: TaskOutcome
) -> JobResult:
    """Turn one pool :class:`TaskOutcome` into a :class:`JobResult`.

    Shared by the batch service and the planning daemon so both
    front-ends validate worker payloads and populate result fields the
    same way: a non-``ok`` outcome keeps its status and error text; an
    ``ok`` outcome whose value is not a well-formed worker payload
    (:data:`REQUIRED_VALUE_KEYS`) is demoted to an error.
    """
    result = JobResult(
        job_id=job.job_id or f"job-{index}",
        index=index,
        status=outcome.status,
        planner=job.planner,
        num_chargers=job.num_chargers,
        group_key=group_key,
        attempts=outcome.attempts,
        error=outcome.error,
        total_s=outcome.elapsed_s,
    )
    if outcome.status != STATUS_OK:
        return result
    value = outcome.value
    if not isinstance(value, dict) or not REQUIRED_VALUE_KEYS <= set(
        value
    ):
        result.status = STATUS_ERROR
        result.error = (
            "malformed worker payload: expected a dict with keys "
            f"{sorted(REQUIRED_VALUE_KEYS)}, got "
            f"{type(value).__name__}"
        )
        return result
    result.longest_delay_s = value["longest_delay_s"]
    result.schedule = value["schedule"]
    result.context_reused = bool(value["context_reused"])
    result.plan_s = float(value["plan_s"])
    result.cache = dict(value["cache"])
    return result


class PlanningService:
    """Run batches of planning jobs over a cache-sharing worker pool.

    Args:
        workers: worker process count; ``1`` (default) runs in-process.
        timeout_s: per-job execution bound, seconds.
        max_retries: extra attempts for failed jobs.
        backoff_s: base of the exponential retry backoff.
        mp_context: multiprocessing start method; note that planners
            registered at runtime (tests, plug-ins) reach pool workers
            only under ``"fork"``.
        share_contexts: reuse one planning context per job group (on by
            default); off builds a cold, unshared context per job —
            the honest baseline for the warm-vs-cold benchmark.
        max_pool_rebuilds: broken-pool rebuilds tolerated per batch
            before the remaining jobs get terminal ``"pool-broken"``
            results (see :class:`~repro.serve.pool.PoolConfig`).
    """

    def __init__(
        self,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        max_retries: int = 0,
        backoff_s: float = 0.0,
        mp_context: Optional[str] = None,
        share_contexts: bool = True,
        max_pool_rebuilds: int = 2,
    ):
        self.config = PoolConfig(
            workers=workers,
            timeout_s=timeout_s,
            max_retries=max_retries,
            backoff_s=backoff_s,
            mp_context=mp_context,
            max_pool_rebuilds=max_pool_rebuilds,
        )
        self.share_contexts = share_contexts
        self._last_stats: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def run(
        self,
        jobs: Sequence[PlanJob],
        progress: Optional[Callable[[JobResult], None]] = None,
        warm_contexts: Optional[Sequence[PlanningContext]] = None,
    ) -> List[JobResult]:
        """Execute ``jobs``; one result per job, in job order.

        Args:
            jobs: the batch.
            progress: optional callback fired once per job with its
                final result, in completion order.
            warm_contexts: already-warm contexts to seed cold groups
                with; each is snapshotted
                (:func:`~repro.pipeline.snapshot_context`) and shipped
                to the worker handling the matching
                ``(network, request set)`` jobs.

        Returns:
            Results positionally aligned with ``jobs``; failures are
            structured results, never exceptions.
        """
        jobs = list(jobs)
        token = f"{os.getpid()}-{next(_RUN_COUNTER)}"
        group_keys = self._assign_groups(jobs)
        warm = self._index_warm_contexts(warm_contexts)

        results: List[Optional[JobResult]] = [None] * len(jobs)
        payloads: List[Dict] = []
        payload_jobs: List[int] = []
        for i, job in enumerate(jobs):
            job_id = job.job_id or f"job-{i}"
            try:
                get_planner(job.planner)
            except KeyError as exc:
                # Fail unknown planners in the parent, without burning
                # pool submissions or retries on them.
                results[i] = JobResult(
                    job_id=job_id,
                    index=i,
                    status=STATUS_ERROR,
                    planner=job.planner,
                    num_chargers=job.num_chargers,
                    group_key=group_keys[i],
                    attempts=0,
                    error=str(exc),
                )
                if progress is not None:
                    progress(results[i])
                continue
            payload = {
                "token": token,
                "group_key": group_keys[i],
                "network": job.network,
                "requests": job.request_ids,
                "num_chargers": job.num_chargers,
                "planner": job.planner,
                "share_contexts": self.share_contexts,
            }
            snapshot = warm.get((id(job.network), job.request_ids))
            if snapshot is not None:
                payload["warm_start"] = snapshot
            payloads.append(payload)
            payload_jobs.append(i)

        def _pool_progress(outcome: TaskOutcome) -> None:
            i = payload_jobs[outcome.index]
            results[i] = result_from_outcome(
                jobs[i], i, group_keys[i], outcome
            )
            if progress is not None:
                progress(results[i])

        run_tasks(
            execute_plan_job,
            payloads,
            config=self.config,
            progress=_pool_progress,
        )
        final = [
            result
            for result in results
            if result is not None  # all slots filled by now
        ]
        self._last_stats = self._aggregate(final)
        return final

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Aggregate counters of the most recent :meth:`run`."""
        return dict(self._last_stats)

    # ------------------------------------------------------------------

    @staticmethod
    def _assign_groups(jobs: Sequence[PlanJob]) -> List[str]:
        """Deterministic group key per job: first-seen network order."""
        keys: List[str] = []
        seen: Dict[int, str] = {}
        for job in jobs:
            ident = id(job.network)
            if ident not in seen:
                seen[ident] = f"g{len(seen)}"
            keys.append(seen[ident])
        return keys

    @staticmethod
    def _index_warm_contexts(
        warm_contexts: Optional[Sequence[PlanningContext]],
    ) -> Dict:
        if not warm_contexts:
            return {}
        return {
            (id(ctx.network), ctx.requests): snapshot_context(ctx)
            for ctx in warm_contexts
        }

    @staticmethod
    def _aggregate(results: Sequence[JobResult]) -> Dict[str, int]:
        stats = {
            "jobs": len(results),
            "ok": 0,
            "errors": 0,
            "timeouts": 0,
            "pool_broken": 0,
            "groups": len({r.group_key for r in results}),
            "context_reuses": 0,
            "attempts": 0,
            "memo_hits": 0,
            "memo_misses": 0,
        }
        for r in results:
            if r.ok:
                stats["ok"] += 1
            elif r.status == STATUS_TIMEOUT:
                stats["timeouts"] += 1
            elif r.status == STATUS_POOL_BROKEN:
                # Abandoned when the pool's rebuild budget ran out;
                # counted as an error too so "ok + errors + timeouts"
                # keeps summing to "jobs" for existing consumers.
                stats["pool_broken"] += 1
                stats["errors"] += 1
            else:
                stats["errors"] += 1
            stats["context_reuses"] += int(r.context_reused)
            stats["attempts"] += r.attempts
            stats["memo_hits"] += int(r.cache.get("memo_hits", 0))
            stats["memo_misses"] += int(r.cache.get("memo_misses", 0))
        return stats


__all__ = ["PlanningService", "REQUIRED_VALUE_KEYS", "result_from_outcome"]
