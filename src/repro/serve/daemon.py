"""The always-on planning daemon: admission, backpressure, degradation.

Where :class:`~repro.serve.service.PlanningService` answers "run this
batch", :class:`PlanningDaemon` answers "keep answering planning
requests until told to stop" — the shape a charging dispatcher
actually has in deployment, where request sets arrive as sensors drain
rather than in neat pre-assembled batches. The daemon composes the
pieces this package already trusts:

* **Persistent warm contexts** — one stable daemon ``token`` plus
  *geometry-digest* group keys (:func:`geometry_digest`) key the
  worker-side :data:`~repro.serve.workers._GROUP_CACHE`, so two
  requests about the same network — arriving minutes apart, inlined
  or referenced, from different connections, even after residual
  energies drifted — land on the same warm
  :class:`~repro.pipeline.PlanningContext` group; the worker syncs
  drifted residuals onto the pinned network and calls
  :meth:`~repro.pipeline.PlanningContext.invalidate` per changed
  sensor instead of rebuilding. The
  :class:`~repro.serve.health.SupervisedPool` keeps worker processes
  (and therefore those caches) alive across requests; with
  ``workers=1`` the cache lives in the daemon process itself.
* **Admission control** (:mod:`repro.serve.admission`) — a bounded
  queue with explicit, structured backpressure: ``queue-full``,
  ``deadline-unmeetable`` (optimistic-bound policy), and
  ``payload-too-large`` rejections are immediate terminal results.
* **Coalescing** — concurrent submissions sharing an identity key
  ``(network digest, request set, K, planner)`` execute once; every
  submission still receives its own result record.
* **Health supervision** — per-job watchdog timeouts, automatic pool
  rebuild on worker death, and a :class:`~repro.serve.health.CircuitBreaker`
  that trips after repeated rebuilds. While the breaker is open,
  admitted jobs run *degraded*: in-process, on the configured cheap
  planner, so the daemon keeps answering (with honest results naming
  the planner that actually ran) instead of feeding a dying pool.
* **Lifecycle** — :meth:`PlanningDaemon.shutdown` drains: in-flight
  jobs finish, queued-but-unstarted ones get terminal
  ``shutting-down`` rejections, and every ticket ever issued resolves
  exactly once. :meth:`reconfigure` applies a new
  :class:`DaemonConfig` to the hot-reloadable knobs (SIGHUP path).

Determinism: the daemon assigns result indices in submission order and
delegates execution to the same ``execute_plan_job`` worker as the
batch service, so an accepted job's
:meth:`~repro.serve.jobs.JobResult.parity_key` is byte-identical to
what a serial :func:`~repro.pipeline.run_planner` call would produce —
the property pinned by the daemon cell of the determinism matrix and
the CI socket smoke test.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.io import PathLike, dump_jsonl_line, wrsn_to_dict
from repro.network.topology import WRSN
from repro.pipeline import get_planner
from repro.serve.admission import (
    AdmissionPolicy,
    REJECT_SHUTDOWN,
    Rejection,
    ServiceTimeEstimator,
)
from repro.serve.health import CircuitBreaker, SupervisedPool
from repro.serve.jobs import JobResult, PlanJob
from repro.serve.pool import STATUS_ERROR, TaskOutcome
from repro.serve.service import result_from_outcome
from repro.serve.workers import execute_plan_job

#: Status document format tag.
DAEMON_STATUS_FORMAT = "repro-daemon-status/1"

#: Distinguishes daemons sharing one process (tests): the worker cache
#: keys on ``(token, group_key)``.
_DAEMON_COUNTER = itertools.count()


def network_digest(network: WRSN) -> str:
    """Content-addressed group key for a network.

    Two structurally identical networks — same canonical
    ``repro-wrsn`` document — digest identically even when they are
    different objects from different connections, which is exactly
    what lets a long-lived daemon keep one warm context group per
    *network identity* instead of per client object.
    """
    canonical = dump_jsonl_line(wrsn_to_dict(network))
    return "net-" + hashlib.sha256(canonical.encode()).hexdigest()[:16]


def geometry_digest(network: WRSN) -> str:
    """Group key for a network's *geometry* — residuals excluded.

    Residual energies drift between requests as sensors drain, but
    everything a :class:`~repro.pipeline.PlanningContext` memoizes
    about geometry (distance cache, charging graph, MIS candidates,
    coverage disks, codecs) depends only on positions and capacities.
    Keying warm-context groups on this digest lets a drifted request
    land on its warm group and pay only a per-sensor
    :meth:`~repro.pipeline.PlanningContext.invalidate` (done worker-
    side by ``execute_plan_job``) instead of a cold rebuild.

    :func:`network_digest` still keys coalescing and the known-network
    table: two jobs differing only in residuals are different *work*,
    just the same *geometry*.
    """
    doc = wrsn_to_dict(network)
    for sensor in doc.get("sensors", []):
        sensor.pop("level_j", None)
    canonical = dump_jsonl_line(doc)
    return "geo-" + hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class DaemonConfig:
    """Everything the daemon needs to know, JSON-loadable for SIGHUP.

    Attributes:
        workers: pool worker count; ``1`` plans in-process.
        timeout_s: per-job watchdog bound, seconds; ``None`` = none.
        max_queue: bounded admission queue capacity.
        max_requests: largest admissible request set; ``None`` = no cap.
        degraded_planner: planner used while the breaker is open; the
            cheapest registered planner by default.
        breaker_failures: pool breakages that trip the breaker.
        breaker_cooldown_s: base breaker cooldown (doubles per trip).
        breaker_cooldown_cap_s: cooldown ceiling.
        mp_context: multiprocessing start method for the pool.
    """

    workers: int = 1
    timeout_s: Optional[float] = None
    max_queue: int = 64
    max_requests: Optional[int] = None
    degraded_planner: str = "K-EDF"
    breaker_failures: int = 3
    breaker_cooldown_s: float = 1.0
    breaker_cooldown_cap_s: float = 60.0
    mp_context: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError(
                f"workers must be positive, got {self.workers}"
            )
        if self.max_queue <= 0:
            raise ValueError(
                f"max_queue must be positive, got {self.max_queue}"
            )

    @classmethod
    def from_file(cls, path: PathLike) -> "DaemonConfig":
        """Load a config from a JSON object file; unknown keys error."""
        with open(path) as fh:
            raw = json.load(fh)
        if not isinstance(raw, dict):
            raise ValueError(
                f"daemon config must be a JSON object, got "
                f"{type(raw).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ValueError(
                f"unknown daemon config keys: {', '.join(unknown)}"
            )
        return cls(**raw)

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class JobTicket:
    """One submission's handle: resolves to exactly one terminal record.

    The daemon guarantees every ticket is resolved exactly once — with
    a planned :class:`JobResult`, an immediate error, or a structured
    rejection — no matter how the session ends.
    """

    def __init__(self, job: PlanJob, job_id: str, index: int):
        self.job = job
        self.job_id = job_id
        self.index = index
        self._event = threading.Event()
        self._record: Optional[Dict] = None
        self.job_result: Optional[JobResult] = None
        #: Monotonic stamps for end-to-end latency measurement
        #: (submission to terminal record), used by the load generator.
        self.submitted_at_s = time.monotonic()
        self.resolved_at_s: Optional[float] = None

    def _resolve(self, record: Dict, result: Optional[JobResult]) -> None:
        if self._event.is_set():  # pragma: no cover - defensive
            raise RuntimeError(f"ticket {self.job_id} resolved twice")
        self._record = record
        self.job_result = result
        self.resolved_at_s = time.monotonic()
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def latency_s(self) -> Optional[float]:
        """Submission-to-resolution seconds; ``None`` while pending."""
        if self.resolved_at_s is None:
            return None
        return self.resolved_at_s - self.submitted_at_s

    def wait(self, timeout_s: Optional[float] = None) -> Dict:
        """Block for the terminal ``repro-result/1`` record."""
        if not self._event.wait(timeout_s):
            raise TimeoutError(
                f"ticket {self.job_id} unresolved after {timeout_s}s"
            )
        assert self._record is not None
        return self._record


class _Entry:
    """One unit of queued work: a leader ticket plus coalesced followers."""

    def __init__(self, key: Tuple, ticket: JobTicket, group_key: str):
        self.key = key
        self.group_key = group_key
        self.tickets: List[JobTicket] = [ticket]


class PlanningDaemon:
    """Long-lived planning server; see the module docstring.

    Args:
        config: the knob set; hot-reloadable via :meth:`reconfigure`.
        clock: monotonic time source for the breaker (test hook).

    Call :meth:`start` before submitting, :meth:`shutdown` to drain.
    The daemon is also a context manager doing exactly that.
    """

    def __init__(
        self,
        config: Optional[DaemonConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config if config is not None else DaemonConfig()
        self._token = f"daemon-{os.getpid()}-{next(_DAEMON_COUNTER)}"
        self._clock = clock
        self._started_at = time.time()

        self.estimator = ServiceTimeEstimator()
        self.admission = AdmissionPolicy(
            max_queue=self.config.max_queue,
            max_requests=self.config.max_requests,
            workers=self.config.workers,
            estimator=self.estimator,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            cooldown_s=self.config.breaker_cooldown_s,
            cooldown_cap_s=self.config.breaker_cooldown_cap_s,
            clock=clock,
        )
        self.pool = SupervisedPool(
            execute_plan_job,
            workers=self.config.workers,
            mp_context=self.config.mp_context,
            timeout_s=self.config.timeout_s,
            on_broken=self.breaker.record_failure,
        )
        # Degraded path: in-process, same watchdog semantics.
        self._degraded_pool = SupervisedPool(
            execute_plan_job,
            workers=1,
            timeout_s=self.config.timeout_s,
        )

        self._cond = threading.Condition()
        self._queue: Deque[_Entry] = deque()
        self._coalesce: Dict[Tuple, _Entry] = {}
        self._in_flight = 0
        self._accepting = False
        self._stopping = False
        self._runners: List[threading.Thread] = []
        self._next_index = 0
        #: Digest LRU so ``status()`` can report how often submissions
        #: hit an already-known network identity.
        self._known_networks: "OrderedDict[str, int]" = OrderedDict()
        self._counters: Dict[str, Any] = {
            "submitted": 0,
            "accepted": 0,
            "coalesced": 0,
            "rejected": {},
            "completed": {},
            "degraded": 0,
            "context_hits": 0,
            "context_misses": 0,
        }

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "PlanningDaemon":
        """Spawn the runner threads and open the front door."""
        with self._cond:
            if self._runners:
                return self
            if self._stopping:
                raise RuntimeError("daemon cannot restart after shutdown")
            self._accepting = True
            for i in range(self.config.workers):
                thread = threading.Thread(
                    target=self._runner_loop,
                    name=f"repro-daemon-runner-{i}",
                    daemon=True,
                )
                self._runners.append(thread)
        for thread in self._runners:
            thread.start()
        return self

    def __enter__(self) -> "PlanningDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Drain and stop: exactly one terminal outcome per ticket.

        In-flight jobs finish normally; queued-but-unstarted entries
        resolve to terminal ``shutting-down`` rejections; runner
        threads exit; both pools close. Idempotent.
        """
        with self._cond:
            self._accepting = False
            self._stopping = True
            drained = list(self._queue)
            self._queue.clear()
            for entry in drained:
                self._coalesce.pop(entry.key, None)
            self._cond.notify_all()
        rejection = Rejection(
            REJECT_SHUTDOWN, "daemon drained before this job started"
        )
        for entry in drained:
            for ticket in entry.tickets:
                self._count_rejection(REJECT_SHUTDOWN)
                ticket._resolve(
                    rejection.to_result_dict(
                        ticket.job_id, ticket.index, ticket.job
                    ),
                    None,
                )
        for thread in self._runners:
            thread.join()
        self.pool.close()
        self._degraded_pool.close()

    def reconfigure(self, config: DaemonConfig) -> List[str]:
        """Apply the hot-reloadable knobs of ``config`` (SIGHUP path).

        Queue/payload caps, the per-job timeout, the degraded planner
        and the breaker thresholds change atomically; ``workers`` and
        ``mp_context`` need a restart and are reported as skipped.

        Returns:
            Human-readable notes describing what changed or was
            skipped.
        """
        notes: List[str] = []
        old = self.config
        if config.workers != old.workers:
            notes.append(
                f"workers {old.workers}->{config.workers} needs a "
                f"restart; keeping {old.workers}"
            )
            config = replace(config, workers=old.workers)
        if config.mp_context != old.mp_context:
            notes.append(
                f"mp_context {old.mp_context!r}->{config.mp_context!r} "
                f"needs a restart; keeping {old.mp_context!r}"
            )
            config = replace(config, mp_context=old.mp_context)
        with self._cond:
            self.config = config
            self.admission.max_queue = config.max_queue
            self.admission.max_requests = config.max_requests
            self.pool.timeout_s = config.timeout_s
            self._degraded_pool.timeout_s = config.timeout_s
            self.breaker.failure_threshold = config.breaker_failures
            self.breaker.cooldown_s = config.breaker_cooldown_s
            self.breaker.cooldown_cap_s = config.breaker_cooldown_cap_s
        for name in (
            "max_queue",
            "max_requests",
            "timeout_s",
            "degraded_planner",
            "breaker_failures",
            "breaker_cooldown_s",
            "breaker_cooldown_cap_s",
        ):
            if getattr(config, name) != getattr(old, name):
                notes.append(
                    f"{name}: {getattr(old, name)!r} -> "
                    f"{getattr(config, name)!r}"
                )
        return notes

    # -- submission ----------------------------------------------------

    def submit(
        self, job: PlanJob, deadline_s: Optional[float] = None
    ) -> JobTicket:
        """Admit (or structurally reject) one job; never blocks.

        Returns a :class:`JobTicket`; rejected and invalid jobs come
        back with the ticket already resolved.
        """
        digest = network_digest(job.network)
        with self._cond:
            index = self._next_index
            self._next_index += 1
            self._counters["submitted"] += 1
            job_id = job.job_id or f"job-{index}"
            ticket = JobTicket(job, job_id, index)

            rejection = self.admission.admit(
                job,
                queue_depth=len(self._queue),
                deadline_s=deadline_s,
                accepting=self._accepting,
            )
            if rejection is not None:
                self._count_rejection(rejection.reason)
                ticket._resolve(
                    rejection.to_result_dict(job_id, index, job), None
                )
                return ticket
            try:
                get_planner(job.planner)
            except KeyError as exc:
                result = JobResult(
                    job_id=job_id,
                    index=index,
                    status=STATUS_ERROR,
                    planner=job.planner,
                    num_chargers=job.num_chargers,
                    group_key=digest,
                    attempts=0,
                    error=str(exc),
                )
                self._count_completion(result.status)
                ticket._resolve(result.to_dict(), result)
                return ticket

            self._note_network(digest)
            self._counters["accepted"] += 1
            key = (digest, job.request_ids, job.num_chargers, job.planner)
            entry = self._coalesce.get(key)
            if entry is not None:
                entry.tickets.append(ticket)
                self._counters["coalesced"] += 1
                return ticket
            entry = _Entry(
                key, ticket, group_key=geometry_digest(job.network)
            )
            self._coalesce[key] = entry
            self._queue.append(entry)
            self._cond.notify()
            return ticket

    def run_batch(
        self,
        jobs: List[PlanJob],
        deadline_s: Optional[float] = None,
    ) -> List[Dict]:
        """Submit a batch and wait; records in submission order."""
        tickets = [self.submit(job, deadline_s) for job in jobs]
        return [ticket.wait() for ticket in tickets]

    # -- execution -----------------------------------------------------

    def _runner_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait()
                if self._stopping and not self._queue:
                    return
                entry = self._queue.popleft()
                self._in_flight += 1
            try:
                self._execute(entry)
            finally:
                with self._cond:
                    self._in_flight -= 1
                    self._cond.notify_all()

    def _execute(self, entry: _Entry) -> None:
        leader = entry.tickets[0]
        degraded = not self.breaker.allow()
        if degraded:
            planner = self.config.degraded_planner
            pool = self._degraded_pool
        else:
            planner = leader.job.planner
            pool = self.pool
        payload = {
            "token": self._token,
            "group_key": entry.group_key,
            "network": leader.job.network,
            "requests": leader.job.request_ids,
            "num_chargers": leader.job.num_chargers,
            "planner": planner,
            "share_contexts": True,
        }
        outcome = pool.run_one(payload, index=leader.index)
        if not degraded:
            if outcome.ok:
                self.breaker.record_success()
            # Breakages already count through the pool's on_broken
            # hook; other failures are the job's fault, not the
            # pool's, and leave the breaker alone.
        self._finish(entry, outcome, planner, degraded)

    def _finish(
        self,
        entry: _Entry,
        outcome: TaskOutcome,
        executed_planner: str,
        degraded: bool,
    ) -> None:
        with self._cond:
            self._coalesce.pop(entry.key, None)
            tickets = list(entry.tickets)
            if degraded:
                self._counters["degraded"] += len(tickets)
        for ticket in tickets:
            result = result_from_outcome(
                ticket.job, ticket.index, entry.group_key, outcome
            )
            result.job_id = ticket.job_id
            # Honesty over symmetry: the record names the planner that
            # actually ran, which differs from the request when the
            # breaker forced the degraded path.
            result.planner = executed_planner
            with self._cond:
                self._count_completion(result.status)
                if result.ok:
                    if result.context_reused:
                        self._counters["context_hits"] += 1
                    else:
                        self._counters["context_misses"] += 1
            ticket._resolve(result.to_dict(), result)
        if outcome.ok and isinstance(outcome.value, dict):
            plan_s = outcome.value.get("plan_s")
            if isinstance(plan_s, (int, float)):
                self.estimator.observe(float(plan_s))

    # -- bookkeeping ---------------------------------------------------

    def _count_rejection(self, reason: str) -> None:
        counts = self._counters["rejected"]
        counts[reason] = counts.get(reason, 0) + 1

    def _count_completion(self, status: str) -> None:
        counts = self._counters["completed"]
        counts[status] = counts.get(status, 0) + 1

    def _note_network(self, digest: str) -> None:
        if digest in self._known_networks:
            self._known_networks.move_to_end(digest)
            self._known_networks[digest] += 1
        else:
            self._known_networks[digest] = 1
            while len(self._known_networks) > 64:
                self._known_networks.popitem(last=False)

    def status(self) -> Dict[str, Any]:
        """The ``repro-daemon-status/1`` document."""
        with self._cond:
            queue_depth = len(self._queue)
            in_flight = self._in_flight
            counters = {
                "submitted": self._counters["submitted"],
                "accepted": self._counters["accepted"],
                "coalesced": self._counters["coalesced"],
                "degraded": self._counters["degraded"],
                "rejected": dict(self._counters["rejected"]),
                "completed": dict(self._counters["completed"]),
            }
            hits = self._counters["context_hits"]
            misses = self._counters["context_misses"]
            networks_seen = len(self._known_networks)
            accepting = self._accepting
        total = hits + misses
        return {
            "format": DAEMON_STATUS_FORMAT,
            "pid": os.getpid(),
            "uptime_s": time.time() - self._started_at,
            "accepting": accepting,
            "workers": self.config.workers,
            "queue_depth": queue_depth,
            "queue_capacity": self.config.max_queue,
            "in_flight": in_flight,
            "breaker": self.breaker.status(),
            "pool_rebuilds": self.pool.rebuilds,
            "context_cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / total) if total else 0.0,
                "networks_seen": networks_seen,
            },
            "min_service_s": self.estimator.min_service_s,
            "counters": counters,
        }


__all__ = [
    "DAEMON_STATUS_FORMAT",
    "DaemonConfig",
    "JobTicket",
    "PlanningDaemon",
    "geometry_digest",
    "network_digest",
]
