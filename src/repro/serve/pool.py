"""Generic ordered fan-out over a worker pool.

:func:`run_tasks` is the execution engine under the batch planning
service and the parallel figure campaigns: it maps a picklable
top-level function over a payload list, either in-process (the default
and fallback — zero surprise, zero pickling) or across a
``concurrent.futures.ProcessPoolExecutor``, and returns one structured
:class:`TaskOutcome` per payload **in payload order** regardless of
completion order.

Failure semantics are uniform across both executors:

* an exception raised by the function becomes an ``"error"`` outcome
  (siblings keep running — one poisoned payload never aborts a batch);
* a task exceeding ``timeout_s`` becomes a ``"timeout"`` outcome. The
  bound is enforced *inside* the executing process by running the call
  on a watchdog thread, so serial and pooled execution time out
  identically and a stuck task cannot wedge the pool's result loop;
* failed tasks are retried up to ``max_retries`` times in later waves,
  with exponential backoff between waves (``backoff_s · 2^(wave-1)``);
  the final outcome records the total attempt count;
* a worker process dying (``BrokenProcessPool``) fails only the tasks
  in flight; the pool is rebuilt before the next retry wave — but at
  most ``max_pool_rebuilds`` times per :func:`run_tasks` call. A
  payload that *deterministically* kills its worker would otherwise
  break the pool once per retry wave; when the rebuild budget is
  exhausted the still-pending tasks get a terminal ``"pool-broken"``
  outcome instead of another doomed wave.

Determinism: outcomes are positionally stable and the function is
expected to be a pure function of its payload, so any two runs — and
any two worker counts — produce the same outcome values.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Outcome status values, in "worst wins" order for aggregation.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
STATUS_POOL_BROKEN = "pool-broken"


@dataclass(frozen=True)
class PoolConfig:
    """Execution knobs shared by every pool consumer.

    Attributes:
        workers: process count; ``1`` (the default) runs every task
            in-process with no executor at all.
        timeout_s: per-task execution bound, seconds; ``None`` = none.
        max_retries: extra attempts granted to a failed task.
        backoff_s: base of the exponential inter-wave backoff.
        mp_context: multiprocessing start method (``"fork"``,
            ``"spawn"``, ...); ``None`` uses the platform default.
        max_pool_rebuilds: executor rebuilds tolerated per
            :func:`run_tasks` call before the still-pending tasks are
            abandoned with a terminal ``"pool-broken"`` outcome.
    """

    workers: int = 1
    timeout_s: Optional[float] = None
    max_retries: int = 0
    backoff_s: float = 0.0
    mp_context: Optional[str] = None
    max_pool_rebuilds: int = 2

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                f"timeout must be positive, got {self.timeout_s}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_s < 0:
            raise ValueError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got "
                f"{self.max_pool_rebuilds}"
            )


@dataclass
class TaskOutcome:
    """What happened to one payload, across all its attempts."""

    index: int
    status: str
    value: Any = None
    error: Optional[str] = None
    attempts: int = 0
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class TaskTimeout(Exception):
    """Raised inside the executing process when a task runs too long."""


def backoff_delay_s(wave: int, backoff_s: float) -> float:
    """Exponential backoff before retry wave ``wave`` (1-based)."""
    if wave <= 0 or backoff_s <= 0:
        return 0.0
    return backoff_s * (2.0 ** (wave - 1))


def call_with_timeout(
    fn: Callable[[Any], Any], payload: Any, timeout_s: Optional[float]
) -> Any:
    """Run ``fn(payload)``, bounding its execution time.

    The call runs on a daemon watchdog thread; on expiry the result is
    abandoned (the thread finishes in the background) and
    :class:`TaskTimeout` is raised immediately, so the caller — serial
    loop or pool worker — reports the timeout promptly instead of
    blocking on the slow task.
    """
    if timeout_s is None:
        return fn(payload)
    box: Dict[str, Any] = {}

    def _target() -> None:
        try:
            box["value"] = fn(payload)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            box["error"] = exc

    thread = threading.Thread(target=_target, daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise TaskTimeout(
            f"task exceeded its {timeout_s:g}s execution bound"
        )
    if "error" in box:
        raise box["error"]
    return box["value"]


def _pool_entry(
    fn: Callable[[Any], Any], payload: Any, timeout_s: Optional[float]
) -> Tuple[str, Any]:
    """Worker-side wrapper: normal errors come back as values.

    Only infrastructure failures (a dead worker, an unpicklable
    return) surface through the future's exception channel.
    """
    try:
        return (STATUS_OK, call_with_timeout(fn, payload, timeout_s))
    except TaskTimeout as exc:
        return (STATUS_TIMEOUT, str(exc))
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        return (STATUS_ERROR, f"{type(exc).__name__}: {exc}")


def _attempt_serial(
    fn: Callable[[Any], Any],
    payload: Any,
    timeout_s: Optional[float],
    outcome: TaskOutcome,
) -> None:
    start = time.perf_counter()
    status, value = _pool_entry(fn, payload, timeout_s)
    outcome.elapsed_s += time.perf_counter() - start
    outcome.attempts += 1
    outcome.status = status
    if status == STATUS_OK:
        outcome.value, outcome.error = value, None
    else:
        outcome.value, outcome.error = None, str(value)


def _run_serial(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    config: PoolConfig,
    progress: Optional[Callable[[TaskOutcome], None]],
) -> List[TaskOutcome]:
    outcomes = [
        TaskOutcome(index=i, status=STATUS_ERROR)
        for i in range(len(payloads))
    ]
    for i, payload in enumerate(payloads):
        for wave in range(config.max_retries + 1):
            if wave:
                time.sleep(backoff_delay_s(wave, config.backoff_s))
            _attempt_serial(fn, payload, config.timeout_s, outcomes[i])
            if outcomes[i].ok:
                break
        if progress is not None:
            progress(outcomes[i])
    return outcomes


def _run_pooled(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    config: PoolConfig,
    progress: Optional[Callable[[TaskOutcome], None]],
) -> List[TaskOutcome]:
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    outcomes = [
        TaskOutcome(index=i, status=STATUS_ERROR)
        for i in range(len(payloads))
    ]
    mp_context = (
        multiprocessing.get_context(config.mp_context)
        if config.mp_context is not None
        else None
    )

    def _make_executor() -> "ProcessPoolExecutor":
        return ProcessPoolExecutor(
            max_workers=config.workers, mp_context=mp_context
        )

    executor = _make_executor()
    rebuilds = 0
    try:
        pending = list(range(len(payloads)))
        for wave in range(config.max_retries + 1):
            if not pending:
                break
            if wave:
                time.sleep(backoff_delay_s(wave, config.backoff_s))
            futures: Dict[Future, int] = {}
            submitted_at: Dict[int, float] = {}
            broken = False
            for i in pending:
                submitted_at[i] = time.perf_counter()
                futures[
                    executor.submit(
                        _pool_entry, fn, payloads[i], config.timeout_s
                    )
                ] = i
            not_done = set(futures)
            while not_done:
                done, not_done = wait(
                    not_done, return_when=FIRST_COMPLETED
                )
                for future in done:
                    i = futures[future]
                    outcome = outcomes[i]
                    outcome.attempts += 1
                    outcome.elapsed_s += (
                        time.perf_counter() - submitted_at[i]
                    )
                    try:
                        status, value = future.result()
                    except BrokenProcessPool:
                        broken = True
                        status, value = (
                            STATUS_ERROR,
                            "worker process died (BrokenProcessPool)",
                        )
                    except Exception as exc:  # unpicklable result etc.
                        status, value = (
                            STATUS_ERROR,
                            f"{type(exc).__name__}: {exc}",
                        )
                    outcome.status = status
                    if status == STATUS_OK:
                        outcome.value, outcome.error = value, None
                    else:
                        outcome.value, outcome.error = None, str(value)
                    final = outcome.ok or wave == config.max_retries
                    if final and progress is not None:
                        progress(outcome)
            pending = [i for i in pending if not outcomes[i].ok]
            if broken:
                if rebuilds >= config.max_pool_rebuilds:
                    # Rebuild budget exhausted: the payload set breaks
                    # every pool it meets. Abandon the survivors with a
                    # terminal outcome instead of another doomed wave.
                    if wave < config.max_retries:
                        for i in pending:
                            outcome = outcomes[i]
                            outcome.status = STATUS_POOL_BROKEN
                            outcome.error = (
                                f"worker pool broke {rebuilds + 1} "
                                f"time(s); giving up (max_pool_rebuilds"
                                f"={config.max_pool_rebuilds})"
                            )
                            if progress is not None:
                                progress(outcome)
                    break
                rebuilds += 1
                executor.shutdown(wait=False, cancel_futures=True)
                executor = _make_executor()
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return outcomes


def run_tasks(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    config: Optional[PoolConfig] = None,
    progress: Optional[Callable[[TaskOutcome], None]] = None,
) -> List[TaskOutcome]:
    """Map ``fn`` over ``payloads``; one outcome per payload, in order.

    Args:
        fn: a picklable module-level callable of one payload argument
            (pool mode pickles both the function and each payload).
        payloads: the work items.
        config: execution knobs; defaults to serial in-process.
        progress: optional callback invoked once per task with its
            *final* outcome, in completion order.

    Returns:
        Outcomes positionally aligned with ``payloads``.
    """
    config = config if config is not None else PoolConfig()
    if config.workers == 1:
        return _run_serial(fn, payloads, config, progress)
    return _run_pooled(fn, payloads, config, progress)


__all__ = [
    "PoolConfig",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_POOL_BROKEN",
    "STATUS_TIMEOUT",
    "TaskOutcome",
    "TaskTimeout",
    "backoff_delay_s",
    "call_with_timeout",
    "run_tasks",
]
