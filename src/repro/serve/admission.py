"""Admission control for the planning daemon: reject early, reject
structurally.

A long-lived daemon under overload has exactly two honest options per
arriving job: queue it, or tell the client *now* — with a structured,
machine-readable reason — that it will never run. Silent queue growth
(latency collapse) and silent drops (lost work) are both lies. The
:class:`AdmissionPolicy` makes the decision at submission time:

* ``queue-full`` — the bounded queue is at capacity. Backpressure is
  explicit: the client sees the rejection immediately instead of a
  timeout minutes later.
* ``deadline-unmeetable`` — the job carries a latency budget
  (``deadline_s``) that is provably unmeetable even under an
  *optimistic* service-time model: the fastest service time ever
  observed, times the jobs queued ahead, divided by the worker count,
  **plus the arriving job's own fastest-possible service time** (a
  job admitted to an empty queue still needs at least one service
  time to finish — comparing the queueing wait alone against the
  deadline accepted jobs that were already certain to miss).
  Following the admission-control argument of arXiv 1810.12385, the
  bound is deliberately a lower bound — the daemon only rejects jobs
  it is *certain* to fail, and never rejects on a pessimistic guess
  (before any observation the estimate is zero and everything is
  admitted).
* ``payload-too-large`` — the request set exceeds the configured
  cap. Oversized problems belong in the batch service, not in the
  interactive queue.
* ``shutting-down`` — the daemon is draining; no new work.

Rejections surface as ``repro-result/1`` records with
``status="rejected"`` and a ``reason`` field carrying one of the
:data:`REJECT_REASONS` tags, so clients can branch on the tag without
parsing prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.io import RESULT_FORMAT
from repro.serve.jobs import PlanJob
from repro.sim.deadline import ServiceTimeEstimator

#: Rejection reason tags, stable API for clients.
REJECT_QUEUE_FULL = "queue-full"
REJECT_DEADLINE = "deadline-unmeetable"
REJECT_PAYLOAD = "payload-too-large"
REJECT_SHUTDOWN = "shutting-down"

STATUS_REJECTED = "rejected"

REJECT_REASONS = (
    REJECT_QUEUE_FULL,
    REJECT_DEADLINE,
    REJECT_PAYLOAD,
    REJECT_SHUTDOWN,
)


@dataclass(frozen=True)
class Rejection:
    """Why a job was refused at the door.

    Attributes:
        reason: one of :data:`REJECT_REASONS`.
        detail: human-readable specifics (caps, estimates).
    """

    reason: str
    detail: str

    def to_result_dict(
        self, job_id: str, index: int, job: Optional[PlanJob] = None
    ) -> Dict:
        """A terminal ``repro-result/1`` record for the rejected job.

        Carries the same keys as a planned result (so stream
        consumers parse one schema) plus the machine-readable
        ``reason`` tag.
        """
        return {
            "format": RESULT_FORMAT,
            "id": job_id,
            "index": index,
            "status": STATUS_REJECTED,
            "reason": self.reason,
            "planner": job.planner if job is not None else None,
            "num_chargers": job.num_chargers if job is not None else None,
            "group": "",
            "attempts": 0,
            "longest_delay_s": None,
            "schedule": None,
            "error": f"{self.reason}: {self.detail}",
            "context_reused": False,
            "plan_s": 0.0,
            "total_s": 0.0,
            "cache": {},
        }


class AdmissionPolicy:
    """Admit-or-reject decisions for the daemon's front door.

    Args:
        max_queue: bounded queue capacity (jobs waiting, not counting
            in-flight ones).
        max_requests: largest admissible request set; ``None`` = no
            cap.
        workers: parallelism assumed by the wait-time bound.
        estimator: shared service-time tracker; a fresh one is built
            when not supplied.
    """

    def __init__(
        self,
        max_queue: int = 64,
        max_requests: Optional[int] = None,
        workers: int = 1,
        estimator: Optional[ServiceTimeEstimator] = None,
    ):
        if max_queue <= 0:
            raise ValueError(
                f"max_queue must be positive, got {max_queue}"
            )
        if max_requests is not None and max_requests <= 0:
            raise ValueError(
                f"max_requests must be positive, got {max_requests}"
            )
        self.max_queue = max_queue
        self.max_requests = max_requests
        self.workers = max(workers, 1)
        self.estimator = (
            estimator if estimator is not None else ServiceTimeEstimator()
        )

    def admit(
        self,
        job: PlanJob,
        queue_depth: int,
        deadline_s: Optional[float] = None,
        accepting: bool = True,
    ) -> Optional[Rejection]:
        """``None`` to admit, or the :class:`Rejection` to send back.

        Checks run cheapest-first; the first failure wins.
        """
        if not accepting:
            return Rejection(
                REJECT_SHUTDOWN, "daemon is draining; resubmit elsewhere"
            )
        if (
            self.max_requests is not None
            and len(job.request_ids) > self.max_requests
        ):
            return Rejection(
                REJECT_PAYLOAD,
                f"request set has {len(job.request_ids)} sensors, cap "
                f"is {self.max_requests}",
            )
        if queue_depth >= self.max_queue:
            return Rejection(
                REJECT_QUEUE_FULL,
                f"admission queue is at capacity "
                f"({queue_depth}/{self.max_queue})",
            )
        if deadline_s is not None:
            # Queueing wait *plus* the job's own optimistic service
            # time: even first in line, the job cannot finish before
            # one service time has elapsed.
            bound_s = self.estimator.optimistic_completion_s(
                queue_depth, self.workers
            )
            if bound_s > deadline_s:
                return Rejection(
                    REJECT_DEADLINE,
                    f"optimistic completion bound {bound_s:.3f}s "
                    f"already exceeds the {deadline_s:g}s deadline "
                    f"({queue_depth} queued ahead, "
                    f"min service {self.estimator.min_service_s:.3f}s, "
                    f"{self.workers} workers)",
                )
        return None


__all__ = [
    "AdmissionPolicy",
    "REJECT_DEADLINE",
    "REJECT_PAYLOAD",
    "REJECT_QUEUE_FULL",
    "REJECT_REASONS",
    "REJECT_SHUTDOWN",
    "Rejection",
    "STATUS_REJECTED",
    "ServiceTimeEstimator",
]
