"""JSONL transports for the planning daemon: stdio and unix socket.

The wire protocol is the repo's existing line formats, reused verbatim:
clients send ``repro-job/1`` records (inline ``network``,
``network_ref`` back-references — scoped per connection — or
``network_path``), optionally extended with a ``deadline_s`` latency
budget for admission control, and receive one ``repro-result/1`` line
per input line **in input order**: planned results, structured
rejections, and per-line parse errors all flow through the same
ordered stream, so a client can zip its requests against the responses
without bookkeeping.

Control lines are JSON objects carrying an ``"op"`` key instead of a
job format tag; ``{"op": "status"}`` answers with the daemon's
``repro-daemon-status/1`` document in-stream.

Two servers share all of that through :class:`DaemonSession`:

* :func:`serve_stream` — one session over arbitrary file objects;
  ``repro daemon`` without a socket runs this over stdin/stdout.
* :func:`make_socket_server` — a threading unix-domain-socket server,
  one session per connection, all feeding one shared
  :class:`~repro.serve.daemon.PlanningDaemon` (which is what makes
  cross-connection context reuse and coalescing possible).

:func:`request` / :func:`request_status` are the matching client
helpers used by the CI smoke test and the load generator.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
from typing import IO, Dict, Iterator, List, Optional, Sequence, Union

from repro.io import dump_jsonl_line
from repro.serve.daemon import JobTicket, PlanningDaemon
from repro.serve.jobs import JobLineError, JobStreamReader

#: Accepted control operations.
OPS = ("status",)


class DaemonSession:
    """One client conversation: parse, submit, answer in order.

    Holds the per-connection :class:`JobStreamReader` (so
    ``network_ref`` labels resolve within the connection) and the
    ordered pending list that guarantees the one-response-per-line
    contract. Not thread-safe; each connection gets its own session.
    """

    def __init__(self, daemon: PlanningDaemon):
        self.daemon = daemon
        self.reader = JobStreamReader()
        #: Responses in input order: resolved dicts or live tickets.
        self._pending: List[Union[Dict, JobTicket]] = []

    # ------------------------------------------------------------------

    def handle_line(self, raw: str, lineno: int) -> Iterator[str]:
        """Process one input line; yield any response lines now ready.

        Responses are released strictly in input order: a line's
        response is held back while an earlier line's job is still
        planning.
        """
        line = raw.strip()
        if line:
            self._pending.append(self._dispatch(line, lineno))
        yield from self._flush_ready()

    def drain(self) -> Iterator[str]:
        """Block for every outstanding response, in order (EOF path)."""
        while self._pending:
            head = self._pending.pop(0)
            record = head.wait() if isinstance(head, JobTicket) else head
            yield dump_jsonl_line(record)

    # ------------------------------------------------------------------

    def _dispatch(
        self, line: str, lineno: int
    ) -> Union[Dict, JobTicket]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            return JobLineError(
                lineno, f"malformed JSON: {exc}"
            ).to_result_dict()
        if isinstance(record, dict) and "op" in record:
            return self._control(record, lineno)
        try:
            job = self.reader.job_from_record(record, lineno)
        except (ValueError, TypeError, KeyError) as exc:
            return JobLineError(lineno, str(exc)).to_result_dict()
        deadline_s = record.get("deadline_s")
        return self.daemon.submit(
            job,
            deadline_s=float(deadline_s) if deadline_s is not None else None,
        )

    def _control(self, record: Dict, lineno: int) -> Dict:
        op = record.get("op")
        if op == "status":
            return self.daemon.status()
        return JobLineError(
            lineno, f"unknown op {op!r}; supported: {', '.join(OPS)}"
        ).to_result_dict()

    def _flush_ready(self) -> Iterator[str]:
        while self._pending:
            head = self._pending[0]
            if isinstance(head, JobTicket):
                if not head.done:
                    return
                record = head.wait()
            else:
                record = head
            self._pending.pop(0)
            yield dump_jsonl_line(record)


def serve_stream(
    daemon: PlanningDaemon, rfile: IO[str], wfile: IO[str]
) -> int:
    """Run one session over text streams until EOF; lines answered.

    Returns the number of response lines written. Responses are
    flushed as soon as ordering allows, so an interactive client sees
    results while later requests are still being typed.
    """
    session = DaemonSession(daemon)
    written = 0
    for lineno, raw in enumerate(rfile, start=1):
        for out in session.handle_line(raw, lineno):
            wfile.write(out + "\n")
            written += 1
        wfile.flush()
    for out in session.drain():
        wfile.write(out + "\n")
        written += 1
    wfile.flush()
    return written


# ----------------------------------------------------------------------
# Unix domain socket server
# ----------------------------------------------------------------------

class _SessionHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        daemon = self.server.daemon  # type: ignore[attr-defined]
        session = DaemonSession(daemon)
        for lineno, raw_bytes in enumerate(self.rfile, start=1):
            raw = raw_bytes.decode("utf-8", errors="replace")
            for out in session.handle_line(raw, lineno):
                self.wfile.write((out + "\n").encode())
            self.wfile.flush()
        for out in session.drain():
            self.wfile.write((out + "\n").encode())
        self.wfile.flush()


class DaemonSocketServer(
    socketserver.ThreadingMixIn, socketserver.UnixStreamServer
):
    """Threaded unix-socket front; one :class:`DaemonSession` per
    connection, one shared :class:`PlanningDaemon` behind them."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, daemon: PlanningDaemon, socket_path: str):
        self.daemon = daemon
        self.socket_path = socket_path
        super().__init__(socket_path, _SessionHandler)

    def close(self) -> None:
        self.server_close()
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass


def make_socket_server(
    daemon: PlanningDaemon, socket_path: str
) -> DaemonSocketServer:
    """Bind a :class:`DaemonSocketServer`, replacing a stale socket."""
    if os.path.exists(socket_path):
        os.unlink(socket_path)
    return DaemonSocketServer(daemon, socket_path)


# ----------------------------------------------------------------------
# Client helpers
# ----------------------------------------------------------------------

def request(
    socket_path: str,
    lines: Sequence[str],
    timeout_s: Optional[float] = 60.0,
) -> List[str]:
    """Send request lines over the socket; collect all response lines.

    Half-closes the write side after sending, then reads until the
    server finishes the session — the batch-style client used by the
    smoke test and the load generator.
    """
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout_s)
        sock.connect(socket_path)
        payload = "".join(line.rstrip("\n") + "\n" for line in lines)
        sock.sendall(payload.encode())
        sock.shutdown(socket.SHUT_WR)
        chunks: List[bytes] = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks).decode().splitlines()


def request_status(
    socket_path: str, timeout_s: Optional[float] = 10.0
) -> Dict:
    """Fetch the daemon's status document over its socket."""
    lines = request(
        socket_path, [json.dumps({"op": "status"})], timeout_s=timeout_s
    )
    if not lines:
        raise RuntimeError("daemon closed the connection without a status")
    return json.loads(lines[0])


__all__ = [
    "DaemonSession",
    "DaemonSocketServer",
    "OPS",
    "make_socket_server",
    "request",
    "request_status",
    "serve_stream",
]
