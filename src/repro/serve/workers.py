"""Worker-side job execution with per-process context-group caching.

:func:`execute_plan_job` is the one function the batch service maps
over its pool (it is module-level and takes a single payload dict, as
:func:`repro.serve.pool.run_tasks` requires). Each worker process keeps
a small LRU of **group states** — the network plus every
:class:`~repro.pipeline.context.PlanningContext` built on it so far —
so consecutive jobs from the same group land on a warm context instead
of re-paying graph/MIS/coverage construction, and jobs with different
request sets on the same network still share one distance cache
(:func:`~repro.pipeline.context.shared_distance_cache` keys on the
cached network *object*, which the group state pins).

The cache key includes a per-service ``token``, so two service runs in
one process never cross-pollinate, and the LRU bound keeps a
long-lived worker from accumulating every network it ever saw.

Serial execution uses exactly this function in-process, so the only
difference between ``workers=1`` and ``workers=N`` is where the cache
lives — never what gets computed. Context memoization is
byte-transparent by construction (see
:mod:`repro.pipeline.context`), which is what the parity suite pins.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.io import schedule_to_dict
from repro.network.topology import WRSN
from repro.units import approx_eq
from repro.pipeline import (
    ContextSnapshot,
    PlanningContext,
    restore_context,
    run_planner,
)

#: Group states retained per worker process before LRU eviction.
MAX_CACHED_GROUPS = 8


@dataclass
class GroupState:
    """Everything one job group shares inside a worker process."""

    network: WRSN
    #: One warm context per request set seen in this group.
    contexts: Dict[Tuple[int, ...], PlanningContext] = field(
        default_factory=dict
    )


_GROUP_CACHE: "OrderedDict[Tuple[str, str], GroupState]" = OrderedDict()


def reset_worker_cache() -> None:
    """Drop all cached group state (test isolation hook)."""
    _GROUP_CACHE.clear()


def _group_state(
    token: str, group_key: str, network: WRSN
) -> Tuple[GroupState, bool]:
    """The cached state for a group, creating it from ``network``.

    Returns ``(state, existed)``. When the group is already cached the
    payload's network copy is discarded in favour of the pinned one —
    that object identity is what makes the weak-keyed distance cache
    shared across the group's jobs.
    """
    key = (token, group_key)
    state = _GROUP_CACHE.get(key)
    if state is not None:
        _GROUP_CACHE.move_to_end(key)
        return state, True
    state = GroupState(network=network)
    _GROUP_CACHE[key] = state
    while len(_GROUP_CACHE) > MAX_CACHED_GROUPS:
        _GROUP_CACHE.popitem(last=False)
    return state, False


def _sync_residuals(state: GroupState, incoming: WRSN) -> None:
    """Fold a drifted request's residuals into its warm group.

    The daemon keys groups on :func:`~repro.serve.daemon.geometry_digest`,
    so a request about a structurally identical network whose batteries
    have drained since the group was pinned still lands here. Instead
    of rebuilding the group's contexts (the pre-PR-10 behaviour), copy
    the changed residual levels onto the pinned network and
    :meth:`~repro.pipeline.context.PlanningContext.invalidate` exactly
    those sensors on every warm context — geometry memos survive, and
    the replan is byte-identical to a cold rebuild (pinned by
    ``tests/test_daemon.py``).
    """
    pinned = state.network
    drift = {}
    for sid in sorted(pinned.all_sensor_ids()):
        level = incoming.sensor(sid).residual_j
        # Exact comparison on purpose (rel_eps=0): any bit of drift
        # must invalidate, or the warm replan would diverge from a
        # cold rebuild at byte level.
        if not approx_eq(level, pinned.sensor(sid).residual_j,
                         rel_eps=0.0, abs_eps=0.0):
            drift[sid] = level
    if not drift:
        return
    pinned.set_residuals(drift)
    changed = sorted(drift)
    for context in state.contexts.values():
        context.invalidate(changed)


def execute_plan_job(payload: Dict) -> Dict:
    """Plan one job; the payload/result contract of the batch service.

    Payload keys: ``token``, ``group_key``, ``network`` (a WRSN),
    ``requests`` (id tuple), ``num_chargers``, ``planner``,
    ``share_contexts`` (bool), optional ``warm_start`` (a
    :class:`~repro.pipeline.ContextSnapshot` to seed a cold group
    with).

    Returns a dict with ``schedule`` (the ``repro-schedule/2``
    document), ``longest_delay_s``, ``context_reused`` (an already-warm
    context served this exact request set), ``plan_s`` and ``cache``
    (context memo/distance counters after the run).
    """
    token = str(payload["token"])
    group_key = str(payload["group_key"])
    network: WRSN = payload["network"]
    requests: Tuple[int, ...] = tuple(payload["requests"])
    num_chargers = int(payload["num_chargers"])
    planner = str(payload["planner"])
    share_contexts = bool(payload.get("share_contexts", True))
    warm_start: Optional[ContextSnapshot] = payload.get("warm_start")

    start = time.perf_counter()
    context_reused = False
    if share_contexts:
        state, existed = _group_state(token, group_key, network)
        if existed and network is not state.network:
            _sync_residuals(state, network)
        context = state.contexts.get(requests)
        if context is not None:
            context_reused = True
        else:
            if warm_start is not None and warm_start.requests == requests:
                context = restore_context(warm_start, state.network)
            else:
                context = PlanningContext(state.network, requests)
            state.contexts[requests] = context
        run_network = state.network
    else:
        context = (
            restore_context(
                warm_start, network, share_distances=False
            )
            if warm_start is not None and warm_start.requests == requests
            else PlanningContext(network, requests, share_distances=False)
        )
        run_network = network

    planned = run_planner(
        planner, run_network, requests, num_chargers, context=context
    )
    plan_s = time.perf_counter() - start
    return {
        "schedule": schedule_to_dict(planned, algorithm=planner),
        "longest_delay_s": planned.longest_delay(),
        "context_reused": context_reused,
        "plan_s": plan_s,
        "cache": context.stats(),
    }


__all__ = [
    "GroupState",
    "MAX_CACHED_GROUPS",
    "execute_plan_job",
    "reset_worker_cache",
]
