"""ASCII / markdown rendering of an eval report.

Two tables: a per-planner summary (win rate vs Appro, mean delays,
miss ratio, repairs) and the per-cell detail (longest delay, miss
ratio, repairs, wall time — ``-`` when the report carries no
timings).  ``fmt="markdown"`` emits pipe tables; ``"ascii"`` pads with
spaces under a dashed rule.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def _render(rows: List[List[str]], header: Sequence[str], fmt: str) -> str:
    widths = [
        max(len(str(header[i])), *(len(row[i]) for row in rows))
        if rows
        else len(str(header[i]))
        for i in range(len(header))
    ]
    if fmt == "markdown":
        lines = [
            "| " + " | ".join(str(h) for h in header) + " |",
            "| " + " | ".join("---" for _ in header) + " |",
        ]
        lines.extend(
            "| " + " | ".join(row) + " |" for row in rows
        )
        return "\n".join(lines)
    head = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(header)
    )
    rule = "  ".join("-" * w for w in widths)
    lines = [head, rule]
    lines.extend(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    )
    return "\n".join(lines)


def _pct(value: Any) -> str:
    return "-" if value is None else f"{100.0 * value:.0f}%"


def render_summary_table(
    report: Dict[str, Any], fmt: str = "ascii"
) -> str:
    """The per-planner summary table of a ``repro-eval/1`` report."""
    header = (
        "planner",
        "cells",
        "win-vs-Appro",
        "mean delay (s)",
        "mean realized (s)",
        "miss ratio",
        "repairs",
    )
    rows = []
    for name, stats in report["planners"].items():
        rows.append(
            [
                name,
                str(stats["cells"]),
                _pct(stats["win_rate_vs_appro"]),
                f"{stats['mean_planned_delay_s']:.1f}",
                f"{stats['mean_realized_delay_s']:.1f}",
                f"{stats['mean_deadline_miss_ratio']:.3f}",
                str(stats["total_repairs"]),
            ]
        )
    return _render(rows, header, fmt)


def render_cells_table(
    report: Dict[str, Any], fmt: str = "ascii"
) -> str:
    """The per-cell detail table of a ``repro-eval/1`` report."""
    timings = report.get("timings", {})
    header = (
        "cell",
        "delay (s)",
        "realized (s)",
        "miss ratio",
        "repairs",
        "wall (s)",
    )
    rows = []
    for cell in report["cells"]:
        timing = timings.get(cell["cell"])
        rows.append(
            [
                cell["cell"],
                f"{cell['planned_delay_s']:.1f}",
                f"{cell['realized_mean_s']:.1f}",
                f"{cell['deadline_miss_ratio']:.3f}",
                str(cell["repairs"]),
                f"{timing['wall_s']:.2f}" if timing else "-",
            ]
        )
    return _render(rows, header, fmt)
