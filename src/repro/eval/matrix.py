"""The evaluation scenario matrix and its cell payloads.

One *instance* is a seeded network at one (size, density) point; one
*group* crosses an instance with a charger count ``K`` and a fault
scenario; one *cell* is a group evaluated under one planner.  Groups
are the unit of the win-rate comparison (every planner in a group
faces the identical instance and the identical fault draws).

Payloads are plain dicts of seeds and scalars — the worker rebuilds
the network deterministically from them, which keeps the pool cheap to
feed and makes results independent of worker count by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.pipeline.planner import planner_names

#: Fault scenarios every matrix crosses (see repro.sim.faults).
EVAL_SCENARIOS: Tuple[str, ...] = ("none", "breakdown", "overload")


@dataclass(frozen=True)
class EvalMatrix:
    """The head-to-head evaluation grid.

    Attributes:
        sizes: network sizes (sensor counts).
        densities: request densities — the fraction of sensors whose
            residual energy is drawn below the request threshold.
        num_chargers: the ``K`` values to cross.
        scenarios: fault-plan names (:data:`EVAL_SCENARIOS`).
        planners: planner names; empty = every registered planner.
        trials: fault-draw rounds executed per cell.
        seed: master seed; instances, residuals and fault plans all
            derive from it.
        budget_factor: per-cell deadline budget as a multiple of a
            planner-independent makespan estimate (total charge
            workload over ``K`` plus the costliest depot round trip);
            the default lands the deadline mid-timeline, where the
            miss ratio separates planners.
        quick: quick mode — smaller grid, timing-free report.
    """

    sizes: Tuple[int, ...] = (60, 100)
    densities: Tuple[float, ...] = (0.5, 1.0)
    num_chargers: Tuple[int, ...] = (1, 2, 3)
    scenarios: Tuple[str, ...] = EVAL_SCENARIOS
    planners: Tuple[str, ...] = ()
    trials: int = 3
    seed: int = 0
    budget_factor: float = 0.75
    quick: bool = False

    def describe(self) -> Dict[str, Any]:
        """The matrix as a JSON-ready mapping (report header)."""
        return {
            "sizes": list(self.sizes),
            "densities": list(self.densities),
            "num_chargers": list(self.num_chargers),
            "scenarios": list(self.scenarios),
            "planners": list(resolve_planners(self)),
            "trials": self.trials,
            "seed": self.seed,
            "budget_factor": self.budget_factor,
        }


def default_matrix(seed: int = 0) -> EvalMatrix:
    """The full head-to-head grid (the ``BENCH_eval.json`` campaign)."""
    return EvalMatrix(seed=seed)


def quick_matrix(seed: int = 0) -> EvalMatrix:
    """The CI smoke grid: one instance, K=2, all three scenarios."""
    return EvalMatrix(
        sizes=(30,),
        densities=(0.5,),
        num_chargers=(2,),
        trials=2,
        seed=seed,
        quick=True,
    )


def resolve_planners(matrix: EvalMatrix) -> Tuple[str, ...]:
    """The planner roster of a matrix (registry order when unset)."""
    if matrix.planners:
        return tuple(matrix.planners)
    return tuple(planner_names(paper_only=False))


def instance_seed(matrix: EvalMatrix, size: int, density: float) -> int:
    """The deterministic network seed of one (size, density) instance."""
    return matrix.seed * 100_003 + size * 101 + int(round(density * 100))


def build_cells(matrix: EvalMatrix) -> List[Dict[str, Any]]:
    """Expand the matrix into ordered worker payloads.

    The order is the deterministic nested-loop order (size, density,
    K, scenario, planner) and is also the report's cell order.
    """
    planners = resolve_planners(matrix)
    cells: List[Dict[str, Any]] = []
    for size in matrix.sizes:
        for density in matrix.densities:
            net_seed = instance_seed(matrix, size, density)
            for k in matrix.num_chargers:
                for scenario in matrix.scenarios:
                    group = (
                        f"n{size}-d{int(round(density * 100))}"
                        f"-k{k}-{scenario}"
                    )
                    for planner in planners:
                        cells.append(
                            {
                                "cell": f"{group}-{planner}",
                                "group": group,
                                "num_sensors": size,
                                "density": density,
                                "num_chargers": k,
                                "scenario": scenario,
                                "planner": planner,
                                "network_seed": net_seed,
                                "fault_seed": matrix.seed,
                                "trials": matrix.trials,
                                "budget_factor": matrix.budget_factor,
                            }
                        )
    return cells
