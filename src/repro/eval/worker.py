"""The per-cell evaluation worker (module-level — lint R10).

One call plans one cell and executes its fault trials:

1. rebuild the instance network from the payload's seeds (identical
   in every process, so results are worker-count independent);
2. draw residuals — requesting sensors land below the threshold,
   healthy ones near full; under the ``overload`` scenario the
   round-0 surge additionally drains a slice of the healthy sensors
   into the request set before planning (the batch analogue of the
   online request surge);
3. plan through the registry, validate, and score the plan;
4. execute ``trials`` seeded fault rounds through
   :func:`repro.sim.faults.executor.execute_with_faults`, accumulating
   realized delays, repairs, deferrals and deadline misses.

The deadline budget is planner-independent: ``budget_factor`` times
a makespan estimate built only from the instance (total full-charge
workload over ``K`` plus the costliest depot round trip), so the miss
ratio compares planners, not budgets.  Wall-clock readings live only under the record's
``"timing"`` key, which quick-mode reports strip (byte parity).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Set

import numpy as np

from repro.energy.charging import ChargerSpec, full_charge_time
from repro.geometry.distcache import DistanceCache
from repro.network.topology import WRSN, random_wrsn
from repro.pipeline.planner import run_planner
from repro.sim.faults.executor import execute_with_faults
from repro.sim.faults.injector import draw_round_faults, surge_victims
from repro.sim.faults.scenarios import get_scenario

#: Residual draw bands, as fractions of capacity.
_REQUEST_BAND = (0.05, 0.20)
_HEALTHY_BAND = (0.80, 1.00)


def _build_instance(payload: Dict[str, Any]) -> "tuple[WRSN, List[int]]":
    """The cell's network and base request set (pre-surge)."""
    net = random_wrsn(payload["num_sensors"], seed=payload["network_seed"])
    ids = sorted(net.all_sensor_ids())
    want = max(1, int(round(payload["density"] * len(ids))))
    requests = ids[:want]
    requesting: Set[int] = set(requests)
    rng = np.random.default_rng(payload["network_seed"] + 1)
    residuals = {}
    for sid in ids:
        low, high = _REQUEST_BAND if sid in requesting else _HEALTHY_BAND
        residuals[sid] = float(rng.uniform(low, high)) * net.sensor(
            sid
        ).capacity_j
    net.set_residuals(residuals)
    return net, requests


def _cell_deadline_s(
    net: WRSN,
    requests: List[int],
    num_chargers: int,
    factor: float,
    spec: ChargerSpec,
) -> float:
    """``factor`` × a planner-independent makespan estimate.

    The estimate is the total full-charge workload split evenly over
    the ``K`` chargers, plus the costliest depot round trip (so tiny
    request sets still get a reachable budget).  With the default
    factor the deadline lands mid-timeline, where the miss ratio
    actually separates planners instead of saturating at 0 or 1.
    """
    dist = DistanceCache(net.positions(), net.depot.position)
    workload = 0.0
    worst_trip = 0.0
    for sid in requests:
        sensor = net.sensor(sid)
        worst_trip = max(
            worst_trip, 2.0 * dist(None, sid) / spec.travel_speed_mps
        )
        workload += full_charge_time(
            sensor.capacity_j, sensor.residual_j, spec.charge_rate_w
        )
    return factor * (workload / num_chargers + worst_trip)


def execute_eval_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Plan and fault-execute one evaluation cell.

    Args:
        payload: one entry of :func:`repro.eval.matrix.build_cells`.

    Returns:
        The cell record: identity fields, plan scores, fault
        aggregates, and a ``"timing"`` sub-dict of wall-clock seconds.
    """
    started = time.perf_counter()
    scenario = payload["scenario"]
    num_chargers = payload["num_chargers"]
    trials = payload["trials"]

    net, requests = _build_instance(payload)
    plan = get_scenario(scenario, seed=payload["fault_seed"])

    # Overload: a surge drains healthy sensors into the request set
    # before planning — every planner in the group sees the same
    # enlarged instance. The surge fires per-round with p < 1, so scan
    # the first rounds for the earliest draw that actually surged.
    surge_rng = np.random.default_rng(payload["network_seed"] + 2)
    probe = draw_round_faults(
        plan, 0, num_chargers, sensor_ids=sorted(net.all_sensor_ids())
    )
    for probe_round in range(1, 8):
        if probe.surge_fraction > 0.0:
            break
        probe = draw_round_faults(
            plan,
            probe_round,
            num_chargers,
            sensor_ids=sorted(net.all_sensor_ids()),
        )
    if probe.surge_fraction > 0.0:
        healthy = [
            sid
            for sid in sorted(net.all_sensor_ids())
            if sid not in set(requests)
        ]
        drained = surge_victims(probe, healthy)
        if drained:
            low, high = _REQUEST_BAND
            net.set_residuals(
                {
                    sid: float(surge_rng.uniform(low, high))
                    * net.sensor(sid).capacity_j
                    for sid in drained
                }
            )
            requests = sorted(set(requests) | set(drained))

    spec = ChargerSpec()
    deadline_s = _cell_deadline_s(
        net, requests, num_chargers, payload["budget_factor"], spec
    )

    plan_started = time.perf_counter()
    schedule = run_planner(
        payload["planner"], net, requests, num_chargers, charger=spec
    )
    plan_s = time.perf_counter() - plan_started
    planned_delay = schedule.longest_delay()
    violations = len(schedule.validate(requests))

    realized: List[float] = []
    repairs = 0
    deferred = 0
    conflicts = 0
    misses = 0
    checks = 0
    for trial in range(trials):
        draw = draw_round_faults(
            plan, trial, num_chargers, sensor_ids=requests
        )
        outcome = execute_with_faults(schedule, draw)
        realized.append(outcome.realized_delay_s)
        repairs += outcome.repairs
        deferred += len(outcome.deferred_sensors)
        conflicts += outcome.violation_count
        for sid in requests:
            checks += 1
            finish = outcome.sensor_finish_s.get(sid)
            if finish is None or finish > deadline_s:
                misses += 1

    return {
        "cell": payload["cell"],
        "group": payload["group"],
        "planner": payload["planner"],
        "num_sensors": payload["num_sensors"],
        "density": payload["density"],
        "num_chargers": num_chargers,
        "scenario": scenario,
        "requests": len(requests),
        "planned_delay_s": planned_delay,
        "realized_mean_s": sum(realized) / len(realized),
        "realized_max_s": max(realized),
        "deadline_s": deadline_s,
        "deadline_miss_ratio": misses / checks if checks else 0.0,
        "repairs": repairs,
        "deferred": deferred,
        "conflicts": conflicts,
        "violations": violations,
        "trials": trials,
        "timing": {
            "plan_s": plan_s,
            "wall_s": time.perf_counter() - started,
        },
    }
