"""Head-to-head evaluation framework (``repro eval``).

Runs every registered planner across a scenario matrix — network
sizes × request densities × K ∈ {1,2,3} — crossed with fault plans
(``none`` / ``breakdown`` / ``overload``) through the
:mod:`repro.serve.pool` engine, and emits one reproducible
``repro-eval/1`` JSON report plus an ASCII/markdown table: longest
delay, per-planner win rate against ``Appro``, deadline-miss ratio,
repair counts and wall time per cell.  Quick-mode reports carry no
timing fields, so they are byte-identical across worker counts and
``PYTHONHASHSEED`` (the parity gate of ``tests/test_eval_parity.py``).
"""

from repro.eval.matrix import (
    EvalMatrix,
    build_cells,
    default_matrix,
    quick_matrix,
    resolve_planners,
)
from repro.eval.report import (
    EVAL_FORMAT,
    build_report,
    cell_parity_lines,
    report_to_json,
)
from repro.eval.runner import run_eval
from repro.eval.table import render_cells_table, render_summary_table
from repro.eval.worker import execute_eval_cell

__all__ = [
    "EVAL_FORMAT",
    "EvalMatrix",
    "build_cells",
    "build_report",
    "cell_parity_lines",
    "default_matrix",
    "execute_eval_cell",
    "quick_matrix",
    "render_cells_table",
    "render_summary_table",
    "report_to_json",
    "resolve_planners",
    "run_eval",
]
