"""The ``repro-eval/1`` report envelope.

The report is one JSON document: the matrix header, the ordered cell
records, and a per-planner summary with the win rate against
``Appro``.  Quick-mode reports strip every wall-clock field, so the
serialized bytes are a pure function of (matrix, code) — the parity
tests compare them across worker counts and ``PYTHONHASHSEED``.
Full-mode reports keep per-cell timings under a separate ``timings``
key, deliberately outside the parity surface.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.eval.matrix import EvalMatrix, resolve_planners
from repro.io import dump_jsonl_line

EVAL_FORMAT = "repro-eval/1"

#: A planner "matches" Appro within this relative slack.
_WIN_REL_TOL = 1e-9


def _wins(delay_s: float, appro_delay_s: float) -> bool:
    return delay_s <= appro_delay_s * (1.0 + _WIN_REL_TOL)


def build_report(
    matrix: EvalMatrix, records: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Assemble the ``repro-eval/1`` document from cell records.

    Args:
        matrix: the evaluated matrix.
        records: :func:`repro.eval.worker.execute_eval_cell` outputs,
            in :func:`repro.eval.matrix.build_cells` order.

    Returns:
        The report mapping (JSON-ready).
    """
    cells = [
        {key: value for key, value in rec.items() if key != "timing"}
        for rec in records
    ]

    # Win rate vs Appro, per group (same instance, K and fault draws).
    appro_delay: Dict[str, float] = {}
    for rec in records:
        if rec["planner"] == "Appro":
            appro_delay[rec["group"]] = rec["planned_delay_s"]

    planners: Dict[str, Dict[str, Any]] = {}
    for name in resolve_planners(matrix):
        mine = [rec for rec in records if rec["planner"] == name]
        if not mine:
            continue
        scored = [rec for rec in mine if rec["group"] in appro_delay]
        wins = sum(
            1
            for rec in scored
            if _wins(rec["planned_delay_s"], appro_delay[rec["group"]])
        )
        planners[name] = {
            "cells": len(mine),
            "scored_vs_appro": len(scored),
            "wins_vs_appro": wins,
            "win_rate_vs_appro": (
                wins / len(scored) if scored else None
            ),
            "mean_planned_delay_s": (
                sum(rec["planned_delay_s"] for rec in mine) / len(mine)
            ),
            "mean_realized_delay_s": (
                sum(rec["realized_mean_s"] for rec in mine) / len(mine)
            ),
            "mean_deadline_miss_ratio": (
                sum(rec["deadline_miss_ratio"] for rec in mine)
                / len(mine)
            ),
            "total_repairs": sum(rec["repairs"] for rec in mine),
            "total_violations": sum(rec["violations"] for rec in mine),
        }

    report: Dict[str, Any] = {
        "format": EVAL_FORMAT,
        "quick": matrix.quick,
        "matrix": matrix.describe(),
        "cells": cells,
        "planners": planners,
    }
    if not matrix.quick:
        report["timings"] = {
            rec["cell"]: rec["timing"] for rec in records
        }
    return report


def report_to_json(report: Dict[str, Any]) -> str:
    """Canonical serialization (sorted keys, trailing newline)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def cell_parity_lines(report: Dict[str, Any]) -> List[str]:
    """One canonical JSONL line per cell, for divergence reporting.

    The parity tests feed these through
    :func:`repro.serve.sanitize.first_divergence` when two reports
    disagree, pinpointing the first differing cell and field.
    """
    return [dump_jsonl_line(cell) for cell in report["cells"]]
