"""Drive an evaluation matrix through the ``serve.pool`` engine."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.eval.matrix import EvalMatrix, build_cells
from repro.eval.report import build_report
from repro.eval.worker import execute_eval_cell
from repro.serve.pool import PoolConfig, run_tasks


def run_eval(
    matrix: EvalMatrix,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Evaluate every cell of ``matrix`` and build its report.

    Args:
        matrix: the grid to run.
        workers: pool processes (1 = in-process serial; results are
            byte-identical at any count).
        timeout_s: optional per-cell execution bound.
        progress: optional callable receiving one line per milestone.

    Returns:
        The ``repro-eval/1`` report mapping.

    Raises:
        RuntimeError: if any cell fails (eval has no partial reports —
            a missing cell would silently skew the win rates).
    """
    cells = build_cells(matrix)
    if progress is not None:
        progress(
            f"eval: {len(cells)} cells "
            f"({len(matrix.sizes)} sizes x "
            f"{len(matrix.densities)} densities x "
            f"{len(matrix.num_chargers)} K x "
            f"{len(matrix.scenarios)} scenarios), "
            f"workers={workers}"
        )
    config = PoolConfig(workers=workers, timeout_s=timeout_s)
    outcomes = run_tasks(execute_eval_cell, cells, config=config)
    records = []
    for payload, outcome in zip(cells, outcomes):
        if not outcome.ok:
            raise RuntimeError(
                f"eval cell {payload['cell']} failed "
                f"({outcome.status}): {outcome.error}"
            )
        records.append(outcome.value)
    if progress is not None:
        progress(f"eval: {len(records)} cells done")
    return build_report(matrix, records)
