"""The sensor entity.

A :class:`Sensor` couples an id, a fixed position, a rechargeable
:class:`~repro.energy.battery.Battery` and a data sensing rate. The
paper draws each sensor's rate ``b_i`` uniformly from
``[b_min, b_max]`` kbps and keeps everything else homogeneous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.battery import Battery
from repro.geometry.point import Point


@dataclass
class Sensor:
    """One stationary rechargeable sensor node.

    Attributes:
        id: unique integer id within a :class:`~repro.network.topology.WRSN`.
        position: fixed planar location in metres.
        battery: mutable battery state.
        data_rate_bps: sensing rate ``b_i`` in bits per second.
    """

    id: int
    position: Point
    battery: Battery = field(default_factory=Battery)
    data_rate_bps: float = 1_000.0

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError(f"sensor id must be non-negative, got {self.id}")
        if self.data_rate_bps < 0:
            raise ValueError(
                f"data rate must be non-negative, got {self.data_rate_bps}"
            )

    @property
    def residual_j(self) -> float:
        """Residual battery energy ``RE_v`` in joules."""
        return self.battery.level_j

    @property
    def capacity_j(self) -> float:
        """Battery capacity ``C_v`` in joules."""
        return self.battery.capacity_j

    def distance_to(self, other: "Sensor") -> float:
        """Euclidean distance to another sensor, in metres."""
        return self.position.distance_to(other.position)

    def copy(self) -> "Sensor":
        """Deep-enough copy: shares the immutable position, clones the
        battery so simulations never alias state across instances."""
        return Sensor(
            id=self.id,
            position=self.position,
            battery=self.battery.copy(),
            data_rate_bps=self.data_rate_bps,
        )
