"""Shortest-path-tree routing to the base station and relay loads.

Sensors forward their data to the base station hop by hop over the
data graph. We route along the shortest (distance-weighted) path tree,
the standard model behind the Li–Mohapatra energy-hole analysis the
paper's evaluation adopts: sensors near the sink carry the traffic of
whole subtrees and therefore deplete much faster, which is what makes
their charging requests frequent and the scheduling problem pressing.

Sensors with no multi-hop path to the base station (isolated components
of a sparse deployment) fall back to a direct long link to the base
station, so every sensor always has a defined load and power draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx

from repro.network.topology import WRSN

#: Virtual graph node representing the base station.
BS_NODE = "BS"


@dataclass(frozen=True)
class RoutingTree:
    """Result of routing every sensor to the base station.

    Attributes:
        parent: next hop of each sensor — another sensor id, or
            :data:`BS_NODE` when the sensor uplinks directly.
        next_hop_distance_m: distance to that next hop.
        depth: hop count to the base station.
    """

    parent: Dict[int, object]
    next_hop_distance_m: Dict[int, float]
    depth: Dict[int, int]

    def children_of(self) -> Dict[object, List[int]]:
        """Invert the parent map: node -> list of child sensor ids."""
        children: Dict[object, List[int]] = {}
        for node, par in self.parent.items():
            children.setdefault(par, []).append(node)
        return children


def build_routing_tree(network: WRSN) -> RoutingTree:
    """Shortest-path tree from every sensor to the base station.

    The base station joins the data graph with edges to all sensors
    within the network's communication range of its position; Dijkstra
    from the base station then yields each sensor's parent. Unreachable
    sensors get a direct link to the base station.
    """
    graph = network.comm_graph().copy()
    graph.add_node(BS_NODE)
    bs_pos = network.base_station.position
    for sensor in network.sensors():
        dist = bs_pos.distance_to(sensor.position)
        if dist <= network.comm_range_m:
            graph.add_edge(BS_NODE, sensor.id, weight=dist)

    lengths, paths = nx.single_source_dijkstra(graph, BS_NODE, weight="weight")

    parent: Dict[int, object] = {}
    next_hop: Dict[int, float] = {}
    depth: Dict[int, int] = {}
    for sensor in network.sensors():
        sid = sensor.id
        if sid in paths and len(paths[sid]) >= 2:
            # paths[sid] runs BS -> ... -> sid; the parent is the
            # second-to-last element.
            par = paths[sid][-2]
            parent[sid] = par
            if par == BS_NODE:
                next_hop[sid] = bs_pos.distance_to(sensor.position)
            else:
                next_hop[sid] = sensor.position.distance_to(
                    network.position_of(par)
                )
            depth[sid] = len(paths[sid]) - 1
        else:
            # Disconnected from the sink: direct uplink fallback.
            parent[sid] = BS_NODE
            next_hop[sid] = bs_pos.distance_to(sensor.position)
            depth[sid] = 1
    return RoutingTree(parent=parent, next_hop_distance_m=next_hop, depth=depth)


def relay_loads_bps(network: WRSN, tree: Optional[RoutingTree] = None) -> Dict[int, float]:
    """Traffic each sensor relays for its routing-tree descendants.

    Returns bits per second of *relayed* (not own) traffic per sensor:
    the sum of the sensing rates of every sensor whose path to the base
    station passes through it.
    """
    if tree is None:
        tree = build_routing_tree(network)
    children = tree.children_of()
    rates = {s.id: s.data_rate_bps for s in network.sensors()}

    # Accumulate subtree rates bottom-up with an explicit stack
    # (post-order), avoiding recursion limits on deep chains.
    subtree: Dict[int, float] = {}

    def subtree_rate(root: int) -> float:
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in subtree:
                continue
            kids = children.get(node, [])
            if expanded or not kids:
                subtree[node] = rates[node] + sum(subtree[k] for k in kids)
            else:
                stack.append((node, True))
                for kid in kids:
                    stack.append((kid, False))
        return subtree[root]

    for sid in rates:
        subtree_rate(sid)
    return {sid: subtree[sid] - rates[sid] for sid in rates}
