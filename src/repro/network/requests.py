"""Charging requests and the residual-energy threshold trigger.

Each sensor sends a charging request to the base station when its
residual energy falls below a threshold (20 % of capacity in the
paper's evaluation). The base station accumulates requests into the
set ``V_s`` of lifetime-critical sensors that a scheduling round must
cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.energy.battery import DEFAULT_REQUEST_THRESHOLD
from repro.network.topology import WRSN


@dataclass(frozen=True, order=True)
class ChargingRequest:
    """One sensor's request for charging.

    Ordered by issue time so request queues sort chronologically.
    """

    time_s: float
    sensor_id: int
    residual_j: float

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"request time must be non-negative: {self.time_s}")
        if self.residual_j < 0:
            raise ValueError(
                f"residual energy must be non-negative: {self.residual_j}"
            )


def sensors_below_threshold(
    network: WRSN, threshold: float = DEFAULT_REQUEST_THRESHOLD
) -> List[int]:
    """Ids of all sensors whose residual fraction is below ``threshold``.

    This is the instantaneous ``V_s`` a scheduling round would serve if
    it started now.
    """
    return [
        s.id for s in network.sensors() if s.battery.below_threshold(threshold)
    ]


def make_requests(
    network: WRSN,
    time_s: float,
    threshold: float = DEFAULT_REQUEST_THRESHOLD,
) -> List[ChargingRequest]:
    """Materialise :class:`ChargingRequest` records for every sensor
    currently below ``threshold``."""
    return [
        ChargingRequest(
            time_s=time_s,
            sensor_id=s.id,
            residual_j=s.battery.level_j,
        )
        for s in network.sensors()
        if s.battery.below_threshold(threshold)
    ]
