"""WRSN topology container and the paper's random deployment generator.

A :class:`WRSN` owns the sensors, the base station, the MCV depot and
the communication range that induces the data-collection graph
``G_s = (V, E)`` of Section III-A. :func:`random_wrsn` builds instances
matching the evaluation settings of Section VI-A: ``n`` sensors uniform
over a 100 × 100 m² field, base station and depot co-located at the
center, 10.8 kJ batteries, and sensing rates uniform in
``[b_min, b_max]``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

import networkx as nx
import numpy as np

from repro.energy.battery import DEFAULT_CAPACITY_J, Battery
from repro.geometry.deployment import Field, uniform_deployment
from repro.geometry.grid_index import GridIndex
from repro.geometry.point import Point
from repro.network.nodes import BaseStation, Depot
from repro.network.sensor import Sensor

#: Default sensor-to-sensor transmission range for the data graph.
DEFAULT_COMM_RANGE_M = 20.0

#: Paper defaults for the sensing-rate interval (Section VI-A), in bps.
DEFAULT_B_MIN_BPS = 1_000.0
DEFAULT_B_MAX_BPS = 50_000.0


class WRSN:
    """A wireless rechargeable sensor network instance.

    Args:
        sensors: the stationary sensors; ids must be unique.
        base_station: the data sink.
        depot: home of the mobile chargers.
        comm_range_m: transmission range defining edges of the data
            graph.
        field: the monitoring field (used for validation and display).
    """

    def __init__(
        self,
        sensors: Iterable[Sensor],
        base_station: BaseStation,
        depot: Depot,
        comm_range_m: float = DEFAULT_COMM_RANGE_M,
        field: Optional[Field] = None,
    ):
        if comm_range_m <= 0:
            raise ValueError(f"comm range must be positive: {comm_range_m}")
        if field is None:
            field = Field()
        self._sensors: Dict[int, Sensor] = {}
        for sensor in sensors:
            if sensor.id in self._sensors:
                raise ValueError(f"duplicate sensor id {sensor.id}")
            self._sensors[sensor.id] = sensor
        self.base_station = base_station
        self.depot = depot
        self.comm_range_m = float(comm_range_m)
        self.field = field
        self._comm_graph: Optional[nx.Graph] = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sensors)

    def __contains__(self, sensor_id: int) -> bool:
        return sensor_id in self._sensors

    def sensor(self, sensor_id: int) -> Sensor:
        """The sensor with the given id."""
        return self._sensors[sensor_id]

    def sensors(self) -> List[Sensor]:
        """All sensors, ordered by id."""
        return [self._sensors[i] for i in sorted(self._sensors)]

    def all_sensor_ids(self) -> List[int]:
        """All sensor ids in ascending order."""
        return sorted(self._sensors)

    def position_of(self, sensor_id: int) -> Point:
        """Position of one sensor."""
        return self._sensors[sensor_id].position

    def positions(self) -> Dict[int, Point]:
        """Mapping of sensor id to position."""
        return {i: s.position for i, s in self._sensors.items()}

    def spatial_index(self, cell_size: float) -> GridIndex:
        """A fresh grid index over all sensor positions."""
        return GridIndex(self.positions(), cell_size=cell_size)

    # ------------------------------------------------------------------
    # Data-collection graph
    # ------------------------------------------------------------------

    def comm_graph(self) -> nx.Graph:
        """The data graph ``G_s``: an edge joins sensors within the
        transmission range of each other, weighted by distance.

        Cached; the topology is static.
        """
        if self._comm_graph is None:
            graph = nx.Graph()
            graph.add_nodes_from(self._sensors)
            index = self.spatial_index(self.comm_range_m)
            for sid, sensor in self._sensors.items():
                for other in index.neighbors_of(sid, self.comm_range_m):
                    if other > sid:
                        dist = sensor.position.distance_to(
                            self._sensors[other].position
                        )
                        graph.add_edge(sid, other, weight=dist)
            self._comm_graph = graph
        return self._comm_graph

    # ------------------------------------------------------------------
    # Mutation used by the simulator
    # ------------------------------------------------------------------

    def set_residuals(self, residuals_j: Mapping[int, float]) -> None:
        """Overwrite battery levels (used to stage scheduling instances)."""
        for sid, level in residuals_j.items():
            sensor = self._sensors[sid]
            if not 0.0 <= level <= sensor.battery.capacity_j:
                raise ValueError(
                    f"residual {level} J out of range for sensor {sid}"
                )
            sensor.battery.level_j = float(level)

    def copy(self) -> "WRSN":
        """Independent copy (batteries cloned, positions shared)."""
        return WRSN(
            sensors=[s.copy() for s in self._sensors.values()],
            base_station=self.base_station,
            depot=self.depot,
            comm_range_m=self.comm_range_m,
            field=self.field,
        )


def random_wrsn(
    num_sensors: int,
    field: Optional[Field] = None,
    seed: int = 0,
    capacity_j: float = DEFAULT_CAPACITY_J,
    b_min_bps: float = DEFAULT_B_MIN_BPS,
    b_max_bps: float = DEFAULT_B_MAX_BPS,
    comm_range_m: float = DEFAULT_COMM_RANGE_M,
    initial_fraction: float = 1.0,
    depot_position: Optional[Point] = None,
) -> WRSN:
    """Generate a WRSN instance with the paper's evaluation settings.

    Args:
        num_sensors: network size ``n`` (the paper sweeps 200–1200).
        field: monitoring field, default 100 × 100 m².
        seed: RNG seed for reproducible instances.
        capacity_j: battery capacity, default 10.8 kJ.
        b_min_bps / b_max_bps: sensing-rate interval; each sensor draws
            uniformly from it.
        comm_range_m: transmission range of the data graph.
        initial_fraction: initial battery level as a fraction of
            capacity (1.0 = all full).
        depot_position: depot/BS location; defaults to the field
            center, as in the paper.

    Returns:
        A fully-initialised :class:`WRSN`.
    """
    if num_sensors <= 0:
        raise ValueError(f"num_sensors must be positive, got {num_sensors}")
    if not 0.0 <= initial_fraction <= 1.0:
        raise ValueError(
            f"initial_fraction must be in [0, 1], got {initial_fraction}"
        )
    if b_min_bps < 0 or b_max_bps < b_min_bps:
        raise ValueError(
            f"invalid rate interval [{b_min_bps}, {b_max_bps}]"
        )
    if field is None:
        field = Field()
    rng = np.random.default_rng(seed)
    points = uniform_deployment(
        num_sensors, field=field, seed=int(rng.integers(0, 2**31))
    )
    rates = rng.uniform(b_min_bps, b_max_bps, num_sensors)
    sensors = [
        Sensor(
            id=i,
            position=points[i],
            battery=Battery(
                capacity_j=capacity_j, level_j=capacity_j * initial_fraction
            ),
            data_rate_bps=float(rates[i]),
        )
        for i in range(num_sensors)
    ]
    center = depot_position if depot_position is not None else field.center
    return WRSN(
        sensors=sensors,
        base_station=BaseStation(position=center),
        depot=Depot(position=center),
        comm_range_m=comm_range_m,
        field=field,
    )
