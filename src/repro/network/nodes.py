"""Fixed infrastructure nodes: the base station and the MCV depot.

The paper assumes a single base station (the data sink and the
scheduler of the mobile chargers) and a depot where the ``K`` MCVs
start and end every closed charging tour. In the evaluation both are
co-located at the field center, but the model keeps them distinct so
other placements can be studied.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point


@dataclass(frozen=True)
class BaseStation:
    """The data sink; has no energy constraint (Section III-A)."""

    position: Point

    def distance_to(self, point: Point) -> float:
        """Euclidean distance from the base station to ``point``."""
        return self.position.distance_to(point)


@dataclass(frozen=True)
class Depot:
    """Home location of the ``K`` mobile charging vehicles.

    Every charging tour is a closed tour through the depot
    (Definition 1); MCVs return here to replenish between rounds.
    """

    position: Point

    def distance_to(self, point: Point) -> float:
        """Euclidean distance from the depot to ``point``."""
        return self.position.distance_to(point)
