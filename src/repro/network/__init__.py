"""WRSN network substrate: entities, topology, routing and requests.

* :mod:`repro.network.sensor` — the :class:`Sensor` entity (position,
  battery, data rate).
* :mod:`repro.network.nodes` — the base station and the MCV depot.
* :mod:`repro.network.topology` — the :class:`WRSN` container and the
  :func:`random_wrsn` generator matching the paper's deployment.
* :mod:`repro.network.routing` — shortest-path-tree routing to the base
  station and relay-load computation.
* :mod:`repro.network.requests` — charging-request records and the
  threshold trigger.
"""

from repro.network.nodes import BaseStation, Depot
from repro.network.requests import ChargingRequest, sensors_below_threshold
from repro.network.routing import RoutingTree, build_routing_tree, relay_loads_bps
from repro.network.sensor import Sensor
from repro.network.topology import WRSN, random_wrsn

__all__ = [
    "BaseStation",
    "ChargingRequest",
    "Depot",
    "RoutingTree",
    "Sensor",
    "WRSN",
    "build_routing_tree",
    "random_wrsn",
    "relay_loads_bps",
    "sensors_below_threshold",
]
