"""CLI command implementations.

Each ``cmd_*`` takes the parsed ``argparse`` namespace, prints
human-readable output to stdout, and returns a process exit code.
"""

from __future__ import annotations

import sys
import time
from typing import Dict

import numpy as np

from repro.bench import experiments
from repro.bench.ascii_plot import plot_experiment
from repro.bench.reporting import (
    format_series_table,
    improvement_over_best_baseline,
)
from repro.core.validation import validate_schedule
from repro.energy.charging import ChargerSpec
from repro.io import load_wrsn, save_schedule, save_wrsn
from repro.network.requests import sensors_below_threshold
from repro.network.topology import random_wrsn
from repro.sim.online import OnlineMonitoringSimulation
from repro.sim.scenario import ALGORITHMS
from repro.sim.simulator import MonitoringSimulation


def cmd_generate(args) -> int:
    """Generate a paper-parameter instance and save it."""
    net = random_wrsn(
        num_sensors=args.num_sensors,
        seed=args.seed,
        b_max_bps=args.b_max_kbps * 1000.0,
    )
    if args.deplete:
        rng = np.random.default_rng(args.seed + 1)
        net.set_residuals(
            {
                sid: float(rng.uniform(0.0, 0.2))
                * net.sensor(sid).capacity_j
                for sid in net.all_sensor_ids()
            }
        )
    save_wrsn(net, args.output)
    state = "depleted" if args.deplete else "full batteries"
    print(
        f"wrote {args.output}: {len(net)} sensors ({state}), "
        f"depot at {tuple(net.depot.position)}"
    )
    return 0


def cmd_schedule(args) -> int:
    """Run one algorithm on a stored instance."""
    net = load_wrsn(args.instance)
    if args.threshold >= 1.0:
        requests = net.all_sensor_ids()
    else:
        requests = sensors_below_threshold(net, threshold=args.threshold)
    if not requests:
        print("no sensor is below the request threshold; nothing to do")
        return 0
    spec = ChargerSpec()
    lifetimes = {sid: 1e12 for sid in requests}
    t0 = time.time()
    result = ALGORITHMS[args.algorithm].run(
        net, requests, args.num_chargers, charger=spec, lifetimes=lifetimes
    )
    elapsed = time.time() - t0
    print(f"algorithm      : {args.algorithm}")
    print(f"requests       : {len(requests)}")
    print(f"chargers (K)   : {args.num_chargers}")
    print(f"longest delay  : {result.longest_delay() / 3600:.2f} h")
    if hasattr(result, "tour_delays"):
        delays = ", ".join(
            f"{d / 3600:.2f}" for d in result.tour_delays()
        )
        print(f"per-tour (h)   : {delays}")
    print(f"solved in      : {elapsed:.2f} s")
    if args.validate:
        if hasattr(result, "coverage"):
            violations = validate_schedule(result, requests)
            print(f"violations     : {len(violations)}")
            for v in violations[:10]:
                print(f"  [{v.kind}] {v.detail}")
        else:
            print("violations     : n/a (one-to-one baseline)")
    if args.output:
        save_schedule(result, args.output, algorithm=args.algorithm)
        print(f"schedule saved : {args.output}")
    return 0


def cmd_simulate(args) -> int:
    """Long-horizon monitoring simulation."""
    net = random_wrsn(
        num_sensors=args.num_sensors,
        seed=args.seed,
        b_max_bps=args.b_max_kbps * 1000.0,
    )
    horizon_s = args.days * 86400.0
    t0 = time.time()
    if args.algorithm == "Appro-Online":
        deadline_s = (
            args.deadline_hours * 3600.0
            if args.deadline_hours is not None
            else None
        )
        sim = OnlineMonitoringSimulation(
            net,
            num_chargers=args.num_chargers,
            horizon_s=horizon_s,
            deadline_s=deadline_s,
            audit=args.audit,
        )
    elif args.deadline_hours is not None or args.audit:
        print(
            "simulate: --deadline-hours / --audit require "
            "-a Appro-Online"
        )
        return 2
    else:
        sim = MonitoringSimulation(
            net,
            args.algorithm,
            num_chargers=args.num_chargers,
            horizon_s=horizon_s,
        )
    metrics = sim.run()
    elapsed = time.time() - t0
    print(f"algorithm                  : {args.algorithm}")
    print(f"network / chargers         : n={args.num_sensors}, "
          f"K={args.num_chargers}")
    print(f"horizon                    : {args.days:g} days")
    print(f"scheduling rounds          : {metrics.num_rounds}")
    print(f"mean longest tour duration : "
          f"{metrics.mean_longest_delay_hours:.2f} h")
    print(f"avg dead duration / sensor : "
          f"{metrics.avg_dead_time_per_sensor_minutes:.1f} min")
    print(f"sensors ever dead          : "
          f"{metrics.num_sensors_ever_dead}/{metrics.num_sensors}")
    if metrics.deadline_total > 0:
        print(f"deadline requests          : {metrics.deadline_total}")
        print(f"deadline miss ratio        : "
              f"{metrics.deadline_miss_ratio:.3f} "
              f"({metrics.deadline_misses} missed, "
              f"{metrics.deadline_dropped} deferred)")
    print(f"simulated in               : {elapsed:.1f} s")
    if args.audit:
        violations = sim.audit_overlap_violations
        print(f"simultaneous-charge audit  : "
              f"{len(violations)} violations")
        if violations:
            return 1
    return 0


_FIGURES = {
    "fig3": (
        experiments.fig3_network_size,
        "n",
        "Fig. 3: vs network size (K=2)",
    ),
    "fig4": (
        experiments.fig4_data_rate,
        "b_max (kbps)",
        "Fig. 4: vs max data rate (n=1000, K=2)",
    ),
    "fig5": (
        experiments.fig5_num_chargers,
        "K",
        "Fig. 5: vs number of chargers (n=1000)",
    ),
}


def cmd_bench(args) -> int:
    """Regenerate one paper figure, or run a micro campaign."""
    if args.online:
        return _cmd_bench_online(args)
    if args.asymptotics or args.quick:
        return _cmd_bench_asymptotics(args)
    if args.figure is None:
        print(
            "bench: a figure is required unless --asymptotics, "
            "--online or --quick is given"
        )
        return 2
    driver, x_label, title = _FIGURES[args.figure]
    result = driver(
        instances=args.instances,
        horizon_s=args.days * 86400.0,
        progress=lambda line: print(f"  .. {line}"),
        workers=args.workers,
    )
    print()
    print(format_series_table(
        result, "longest_delay_h", f"{title} — longest tour duration",
        "hours",
    ))
    print()
    print(format_series_table(
        result, "dead_min", f"{title} — avg dead duration per sensor",
        "minutes",
    ))
    gains = improvement_over_best_baseline(result, "longest_delay_h")
    print(
        "\nAppro improvement over the best baseline per point: "
        + ", ".join(f"{g:.0%}" for g in gains)
    )
    if args.plot:
        print()
        print(plot_experiment(
            result, "longest_delay_h",
            f"{title} — longest tour duration", "h",
        ))
        print()
        print(plot_experiment(
            result, "dead_min",
            f"{title} — dead duration", "min",
        ))
    return 0


def _cmd_bench_asymptotics(args) -> int:
    """Run the array-engine asymptotics campaign (DESIGN §16)."""
    from repro.bench.asymptotics import (
        DEFAULT_SIZES,
        format_asymptotics,
        run_asymptotics,
    )
    from repro.bench.record import write_bench_record

    if args.quick:
        sizes = args.sizes if args.sizes else [500]
        repeats = 1
    else:
        sizes = args.sizes if args.sizes else list(DEFAULT_SIZES)
        repeats = args.repeats
    record = run_asymptotics(
        sizes=sizes,
        repeats=repeats,
        seed=args.seed,
        progress=lambda line: print(f"  .. {line}"),
    )
    print()
    print(format_asymptotics(record))
    if args.json:
        write_bench_record(record, args.json)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_bench_online(args) -> int:
    """Run the online-replanning campaign (DESIGN §17)."""
    from repro.bench.online import (
        DEFAULT_NUM_SENSORS,
        SPEEDUP_FLOOR,
        format_online,
        run_online_bench,
        state_speedup,
    )
    from repro.bench.record import write_bench_record

    if args.quick:
        num_sensors, rounds = 120, 2
    else:
        num_sensors, rounds = DEFAULT_NUM_SENSORS, args.repeats
    record = run_online_bench(
        num_sensors=num_sensors,
        rounds=rounds,
        seed=args.seed,
        progress=lambda line: print(f"  .. {line}"),
    )
    print()
    print(format_online(record))
    if args.json:
        write_bench_record(record, args.json)
        print(f"\nwrote {args.json}")
    headline = state_speedup(record)
    if not args.quick and headline is not None and (
        headline < SPEEDUP_FLOOR
    ):
        print("FAIL: delta invalidation is below the speedup floor")
        return 1
    return 0


def cmd_report(args) -> int:
    """Run the full campaign and write the report files."""
    from repro.bench.campaign import run_campaign, write_campaign

    campaign = run_campaign(
        instances=args.instances,
        horizon_days=args.days,
        figures=tuple(args.figures),
        progress=lambda line: print(f"  .. {line}"),
        workers=args.workers,
    )
    paths = write_campaign(campaign, args.output_dir)
    print(f"report : {paths['report']}")
    print(f"results: {paths['results']}")
    return 0


def cmd_inspect(args) -> int:
    """Structural + load analysis of a stored instance."""
    from repro.graphs.analysis import load_factor, structure_report

    net = load_wrsn(args.instance)
    if args.threshold >= 1.0:
        requests = net.all_sensor_ids()
    else:
        requests = sensors_below_threshold(net, threshold=args.threshold)
    load = load_factor(net, num_chargers=args.num_chargers)
    print(f"sensors                 : {len(net)}")
    print(f"analysed request set    : {len(requests)}")
    print(f"total demand            : {load.total_demand_w:.2f} W")
    print(
        f"one-to-one capacity     : {load.one_to_one_capacity_w:.2f} W "
        f"(K={args.num_chargers})"
    )
    print(f"load factor             : {load.load_factor:.2f}"
          + ("  << baselines will diverge"
             if load.predicts_baseline_divergence else ""))
    print(
        f"hottest sensor          : {load.hottest_sensor_w * 1000:.1f} mW "
        f"(full-battery lifetime {load.hottest_lifetime_h:.1f} h)"
    )
    if requests:
        report = structure_report(net, requests)
        print(f"charging graph edges    : {report.charging_graph_edges}")
        print(f"sojourn candidates |S_I|: {report.sojourn_candidates}")
        print(f"conflict-free core      : {report.conflict_free_core}")
        print(f"conflict edges / max deg: {report.conflict_edges} / "
              f"{report.delta_h} (Lemma 2 bound 26)")
        print(f"mean disk occupancy     : {report.mean_occupancy:.2f}")
        print(f"stops per sensor        : {report.stops_per_sensor:.2f}")
    return 0


def cmd_compare(args) -> int:
    """All five algorithms on one fully-requesting instance."""
    net = random_wrsn(num_sensors=args.num_sensors, seed=args.seed)
    rng = np.random.default_rng(args.seed + 1)
    net.set_residuals(
        {
            sid: float(rng.uniform(0.0, 0.2)) * net.sensor(sid).capacity_j
            for sid in net.all_sensor_ids()
        }
    )
    requests = net.all_sensor_ids()
    lifetimes = {sid: 1e12 for sid in requests}
    rows: Dict[str, float] = {}
    print(
        f"n={args.num_sensors}, all requesting, K={args.num_chargers}\n"
    )
    print(f"{'algorithm':<10} {'longest delay (h)':>18} {'runtime (s)':>12}")
    print("-" * 44)
    for name, spec in ALGORITHMS.items():
        t0 = time.time()
        result = spec.run(
            net, requests, args.num_chargers, charger=None,
            lifetimes=lifetimes,
        )
        rows[name] = result.longest_delay()
        print(
            f"{name:<10} {result.longest_delay() / 3600:>18.2f} "
            f"{time.time() - t0:>12.2f}"
        )
    best_baseline = min(v for k, v in rows.items() if k != "Appro")
    print(
        f"\nAppro is {1 - rows['Appro'] / best_baseline:.0%} shorter than "
        f"the best one-to-one baseline."
    )
    return 0


def cmd_plan(args) -> int:
    """Run one registered planner through the unified pipeline."""
    from repro.pipeline import PlanningContext, run_planner

    net = random_wrsn(num_sensors=args.num_sensors, seed=args.seed)
    rng = np.random.default_rng(args.seed + 1)
    net.set_residuals(
        {
            sid: float(rng.uniform(0.0, 0.2)) * net.sensor(sid).capacity_j
            for sid in net.all_sensor_ids()
        }
    )
    requests = net.all_sensor_ids()
    ctx = PlanningContext(net, requests)
    t0 = time.time()
    result = run_planner(
        args.planner, net, requests, args.num_chargers, context=ctx
    )
    elapsed = time.time() - t0
    uncovered = sorted(set(requests) - result.covered_sensors())
    stats = ctx.stats()
    print(f"planner        : {result.planner}")
    print(f"requests       : {len(requests)}")
    print(f"chargers (K)   : {result.num_tours}")
    print(f"multi-node     : {result.multi_node}")
    print(f"longest delay  : {result.longest_delay() / 3600:.2f} h")
    delays = ", ".join(f"{d / 3600:.2f}" for d in result.tour_delays())
    print(f"per-tour (h)   : {delays}")
    print(f"covered        : {len(result.covered_sensors())}"
          f"/{len(requests)}")
    print(f"violations     : {len(result.validate(requests))}")
    print(f"cache          : {stats['distance_pairs']} distance pairs, "
          f"{stats['distance_hits']} hits / "
          f"{stats['distance_misses']} misses, "
          f"{stats['memo_hits']} memo hits")
    print(f"solved in      : {elapsed:.2f} s")
    if uncovered:
        print(f"error: {len(uncovered)} request(s) left uncovered: "
              f"{uncovered[:10]}", file=sys.stderr)
        return 1
    return 0


def cmd_faults(args) -> int:
    """Run the fault-injection campaign and print the comparison."""
    from repro.bench.fault_campaign import run_fault_campaign
    from repro.bench.workloads import fault_trials

    trials = args.trials if args.trials is not None else fault_trials()
    print(
        f"scenario={args.scenario} n={args.num_sensors} "
        f"K={args.num_chargers} trials={trials} seed={args.seed}\n"
    )
    result = run_fault_campaign(
        scenario=args.scenario,
        algorithms=args.algorithms,
        num_sensors=args.num_sensors,
        num_chargers=args.num_chargers,
        trials=trials,
        seed=args.seed,
        progress=lambda line: print(f"  {line}"),
        workers=args.workers,
    )
    print()
    print(result.format_table())
    appro_rows = [r for r in result.rows if r.violation_trials is not None]
    if appro_rows:
        worst = max(r.violation_trials or 0 for r in appro_rows)
        print(
            f"\nrealized constraint violations across "
            f"{trials} fault trials: {worst}"
        )
    return 0


def _write_demo_jobs(path: str) -> None:
    """A small self-contained batch: 2 networks × 3 planners × K∈{1,2}."""
    from repro.serve import PlanJob, save_jobs

    jobs = []
    for net_seed in (11, 12):
        net = random_wrsn(num_sensors=30, seed=net_seed)
        rng = np.random.default_rng(net_seed + 1)
        net.set_residuals(
            {
                sid: float(rng.uniform(0.0, 0.2))
                * net.sensor(sid).capacity_j
                for sid in net.all_sensor_ids()
            }
        )
        requests = tuple(net.all_sensor_ids())
        for planner in ("Appro", "K-minMax", "K-EDF"):
            for k in (1, 2):
                jobs.append(
                    PlanJob(
                        network=net,
                        request_ids=requests,
                        num_chargers=k,
                        planner=planner,
                    )
                )
    save_jobs(jobs, path)


def cmd_serve(args) -> int:
    """Run a JSONL job batch through the batch planning service.

    Malformed input lines don't abort the stream: each becomes one
    structured ``repro-result/1`` error line, interleaved in input
    order with the planned jobs' results.
    """
    from repro.io import dump_jsonl_line
    from repro.serve import PlanningService, load_jobs_lenient

    if args.demo:
        _write_demo_jobs(args.jobs)
        print(f"wrote demo batch: {args.jobs}", file=sys.stderr)
    parsed, line_errors = load_jobs_lenient(args.jobs)
    for err in line_errors:
        print(f"  line {err.lineno}: {err.error}", file=sys.stderr)
    jobs = [job for _, job in parsed]
    service = PlanningService(
        workers=args.workers,
        timeout_s=args.timeout,
        max_retries=args.retries,
        backoff_s=args.backoff,
        share_contexts=not args.no_shared_context,
    )
    t0 = time.time()
    results = service.run(
        jobs,
        progress=lambda r: print(
            f"  {r.job_id}: {r.status} ({r.planner}, K={r.num_chargers})",
            file=sys.stderr,
        ),
    )
    elapsed = time.time() - t0
    records = [
        (lineno, result.to_dict())
        for (lineno, _), result in zip(parsed, results)
    ] + [(err.lineno, err.to_result_dict()) for err in line_errors]
    records.sort(key=lambda pair: pair[0])
    lines = "".join(
        dump_jsonl_line(record) + "\n" for _, record in records
    )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(lines)
    else:
        sys.stdout.write(lines)
    stats = service.stats()
    print(
        f"{stats['jobs']} jobs in {elapsed:.2f}s: {stats['ok']} ok, "
        f"{stats['errors']} errors, {stats['timeouts']} timeouts "
        f"({stats['groups']} groups, {stats['context_reuses']} context "
        f"reuses, {stats['memo_hits']} memo hits; "
        f"{len(line_errors)} malformed input lines)",
        file=sys.stderr,
    )
    return 0 if stats["ok"] == stats["jobs"] and not line_errors else 1


def cmd_daemon(args) -> int:
    """Run the always-on planning daemon (stdio or unix socket)."""
    import json
    import os
    import signal
    import threading
    from dataclasses import replace

    from repro.serve.daemon import DaemonConfig, PlanningDaemon
    from repro.serve.transport import make_socket_server, serve_stream

    def load_config() -> DaemonConfig:
        config = (
            DaemonConfig.from_file(args.config)
            if args.config
            else DaemonConfig()
        )
        overrides = {}
        if args.workers is not None:
            overrides["workers"] = args.workers
        if args.timeout is not None:
            overrides["timeout_s"] = args.timeout
        if args.queue is not None:
            overrides["max_queue"] = args.queue
        if args.max_requests is not None:
            overrides["max_requests"] = args.max_requests
        if args.degraded_planner is not None:
            overrides["degraded_planner"] = args.degraded_planner
        return replace(config, **overrides) if overrides else config

    daemon = PlanningDaemon(load_config())
    daemon.start()

    if args.socket is None:
        # One session over stdin/stdout; EOF drains and exits.
        try:
            written = serve_stream(daemon, sys.stdin, sys.stdout)
        finally:
            daemon.shutdown()
        print(
            f"daemon stdio session done: {written} response lines",
            file=sys.stderr,
        )
        return 0

    server = make_socket_server(daemon, args.socket)
    stop = threading.Event()
    reload_requested = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGHUP, lambda *_: reload_requested.set())
    serve_thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    serve_thread.start()
    print(
        f"daemon listening on {args.socket} (pid {os.getpid()}, "
        f"workers {daemon.config.workers})",
        file=sys.stderr,
    )
    while not stop.wait(0.2):
        if reload_requested.is_set():
            reload_requested.clear()
            try:
                new_config = load_config()
            except (OSError, ValueError, TypeError) as exc:
                print(f"reload failed: {exc}", file=sys.stderr)
                continue
            notes = daemon.reconfigure(new_config)
            for note in notes:
                print(f"reload: {note}", file=sys.stderr)
            if not notes:
                print("reload: no changes", file=sys.stderr)
    print("draining: in-flight jobs finish, queued jobs are "
          "rejected", file=sys.stderr)
    server.shutdown()
    daemon.shutdown()
    server.close()
    print(json.dumps(daemon.status()), file=sys.stderr)
    return 0


def cmd_loadgen(args) -> int:
    """Drive the planning daemon at a sustained offered rate."""
    from repro.bench.loadgen import main as loadgen_main

    return loadgen_main(
        workers=args.workers,
        duration_s=args.duration,
        rate_jps=args.rate,
        max_queue=args.queue,
        overload=args.overload,
        seed=args.seed,
        json_path=args.json,
    )


def cmd_sanitize(args) -> int:
    """Run the runtime determinism sanitizer (repro.serve.sanitize)."""
    import json

    from repro.serve.sanitize import (
        DEFAULT_HASH_SEEDS,
        DEFAULT_WORKER_COUNTS,
        build_corpus,
        quick_corpus,
        run_matrix,
        sanitize_corpus,
    )

    hash_seeds = (
        tuple(int(s) for s in args.hash_seeds.split(","))
        if args.hash_seeds
        else DEFAULT_HASH_SEEDS
    )
    if args.workers:
        worker_counts = tuple(int(w) for w in args.workers.split(","))
    elif args.quick:
        worker_counts = (1, 2)
    else:
        worker_counts = DEFAULT_WORKER_COUNTS

    if args.jobs:
        print(f"sanitizing existing corpus: {args.jobs}", file=sys.stderr)
        report = run_matrix(
            args.jobs,
            hash_seeds=hash_seeds,
            worker_counts=worker_counts,
            plugin=args.plugin,
            daemon_cells=args.daemon,
            online_cells=args.online,
        )
    else:
        jobs = (
            quick_corpus(seed=args.seed)
            if args.quick
            else build_corpus(seed=args.seed)
        )
        print(
            f"sanitizing a generated corpus of {len(jobs)} jobs "
            f"(seed {args.seed})",
            file=sys.stderr,
        )
        report = sanitize_corpus(
            jobs,
            hash_seeds=hash_seeds,
            worker_counts=worker_counts,
            plugin=args.plugin,
            daemon_cells=args.daemon,
            online_cells=args.online,
        )

    for cell in report.cells:
        tag = "baseline" if cell.get("baseline") else "compared"
        mode = " daemon" if cell.get("daemon") else ""
        if cell.get("online"):
            mode = f" online-{cell['online']}"
        print(
            f"  PYTHONHASHSEED={cell['hash_seed']} "
            f"workers={cell['workers']}{mode}: {cell['lines']} "
            f"parity lines ({tag})",
            file=sys.stderr,
        )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    if report.ok:
        print(
            f"deterministic: {report.jobs} jobs byte-identical across "
            f"{len(report.cells)} interpreter/pool combinations"
        )
        return 0
    for divergence in report.divergences:
        print(f"DIVERGENT: {divergence.describe()}")
    return 1


def cmd_lint(args) -> int:
    """Run the project's static-analysis rules (repro.lint)."""
    from repro.lint import (
        all_rules,
        format_findings_json,
        format_findings_text,
        lint_paths,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:<20} {rule.severity.value:<8} "
                  f"{rule.description}")
        return 0
    try:
        findings = lint_paths(args.paths, select=args.select or None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_findings_json(findings))
    elif findings:
        print(format_findings_text(findings))
    else:
        print("clean: no findings")
    return 1 if findings else 0


def cmd_eval(args) -> int:
    """Run the head-to-head planner evaluation (repro.eval)."""
    from repro.eval import (
        default_matrix,
        quick_matrix,
        render_cells_table,
        render_summary_table,
        report_to_json,
        run_eval,
    )

    matrix = (
        quick_matrix(seed=args.seed)
        if args.quick
        else default_matrix(seed=args.seed)
    )
    report = run_eval(
        matrix,
        workers=args.workers,
        progress=lambda line: print(line, file=sys.stderr),
    )
    fmt = "markdown" if args.markdown else "ascii"
    print(render_summary_table(report, fmt=fmt))
    if args.cells:
        print()
        print(render_cells_table(report, fmt=fmt))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report_to_json(report))
        print(f"wrote {args.output}", file=sys.stderr)
    if args.bench:
        from repro.bench.record import bench_record, write_bench_record

        cells = report["cells"]
        derived = {}
        for name, stats in report["planners"].items():
            rate = stats["win_rate_vs_appro"]
            if rate is not None:
                derived[f"win_rate_vs_appro[{name}]"] = rate
            derived[f"mean_planned_delay_s[{name}]"] = stats[
                "mean_planned_delay_s"
            ]
        record = bench_record(
            benchmark="eval-head-to-head",
            params=report["matrix"],
            metrics={
                "planned_delay_s": [
                    c["planned_delay_s"] for c in cells
                ],
                "realized_mean_s": [c["realized_mean_s"] for c in cells],
                "deadline_miss_ratio": [
                    c["deadline_miss_ratio"] for c in cells
                ],
            },
            derived=derived,
        )
        write_bench_record(record, args.bench)
        print(f"wrote {args.bench}", file=sys.stderr)
    return 0
