"""CLI argument parsing and dispatch.

Kept separate from the command implementations
(:mod:`repro.cli.commands`) so the parser can be unit-tested without
executing anything.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cli import commands
from repro.pipeline import planner_names
from repro.sim.faults.scenarios import scenario_names
from repro.sim.scenario import ALGORITHMS

_ALGORITHM_NAMES = sorted(ALGORITHMS)
_PLANNER_NAMES = planner_names()


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Multi-node charging with multiple mobile chargers "
            "(Xu et al., ICDCS 2019) — reproduction toolkit."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="generate a WRSN instance and save it as JSON"
    )
    gen.add_argument("output", help="output JSON path")
    gen.add_argument("-n", "--num-sensors", type=int, default=500)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--deplete",
        action="store_true",
        help="draw residuals uniformly below the 20%% threshold",
    )
    gen.add_argument("--b-max-kbps", type=float, default=50.0)
    gen.set_defaults(func=commands.cmd_generate)

    sch = sub.add_parser(
        "schedule",
        help="run one scheduling algorithm on an instance",
    )
    sch.add_argument("instance", help="WRSN JSON (from 'generate')")
    sch.add_argument(
        "-a", "--algorithm", choices=_ALGORITHM_NAMES, default="Appro"
    )
    sch.add_argument("-k", "--num-chargers", type=int, default=2)
    sch.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="request sensors below this residual fraction "
        "(default 0.2; use 1.0 to request everyone)",
    )
    sch.add_argument("-o", "--output", help="save the schedule JSON here")
    sch.add_argument(
        "--validate", action="store_true",
        help="run the feasibility validator and report violations",
    )
    sch.set_defaults(func=commands.cmd_schedule)

    sim = sub.add_parser(
        "simulate", help="long-horizon monitoring simulation"
    )
    sim.add_argument(
        "-a", "--algorithm", choices=_ALGORITHM_NAMES + ["Appro-Online"],
        default="Appro",
    )
    sim.add_argument("-n", "--num-sensors", type=int, default=1000)
    sim.add_argument("-k", "--num-chargers", type=int, default=2)
    sim.add_argument("--days", type=float, default=60.0)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--b-max-kbps", type=float, default=50.0)
    sim.add_argument(
        "--deadline-hours", type=float, default=None, metavar="H",
        help="per-request latency budget for the online deadline "
        "policy (Appro-Online only); reports the miss ratio",
    )
    sim.add_argument(
        "--audit", action="store_true",
        help="Appro-Online only: sweep the realized timeline for "
        "cross-tour simultaneous charging; any violation fails the "
        "run",
    )
    sim.set_defaults(func=commands.cmd_simulate)

    bench = sub.add_parser(
        "bench",
        help="regenerate a paper figure (tables + ASCII plots) or run "
        "the asymptotics / online-replanning campaigns",
    )
    bench.add_argument(
        "figure", nargs="?", choices=["fig3", "fig4", "fig5"],
        help="which evaluation figure to regenerate (omit with "
        "--asymptotics / --online / --quick)",
    )
    bench.add_argument("--instances", type=int, default=2)
    bench.add_argument("--days", type=float, default=40.0)
    bench.add_argument(
        "--plot", action="store_true", help="also render ASCII plots"
    )
    bench.add_argument(
        "--workers", type=int, default=1,
        help="simulation worker processes (default: 1, in-process)",
    )
    bench.add_argument(
        "--asymptotics", action="store_true",
        help="time the array tour kernels against the legacy scalar "
        "paths on large synthetic instances (parity-checked)",
    )
    bench.add_argument(
        "--online", action="store_true",
        help="time delta invalidation (PlanningContext.invalidate) "
        "against a cold context rebuild under seeded mid-round "
        "residual perturbations (parity-checked every round)",
    )
    bench.add_argument(
        "--sizes", type=int, nargs="+", metavar="N", default=None,
        help="asymptotics instance sizes (default: 2000 5000 10000)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="asymptotics timing samples per metric",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the asymptotics record as repro-bench/1 JSON",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="single-repeat 500-node asymptotics parity smoke (CI)",
    )
    bench.set_defaults(func=commands.cmd_bench)

    cmp_ = sub.add_parser(
        "compare", help="all five algorithms on one request batch"
    )
    cmp_.add_argument("-n", "--num-sensors", type=int, default=500)
    cmp_.add_argument("-k", "--num-chargers", type=int, default=2)
    cmp_.add_argument("--seed", type=int, default=0)
    cmp_.set_defaults(func=commands.cmd_compare)

    rep = sub.add_parser(
        "report",
        help="run the full evaluation campaign and write a Markdown "
        "report + JSON results",
    )
    rep.add_argument(
        "-o", "--output-dir", default="evaluation-report",
        help="directory for evaluation.md / evaluation.json",
    )
    rep.add_argument("--instances", type=int, default=2)
    rep.add_argument("--days", type=float, default=40.0)
    rep.add_argument(
        "--figures", nargs="+", choices=["fig3", "fig4", "fig5"],
        default=["fig3", "fig4", "fig5"],
    )
    rep.add_argument(
        "--workers", type=int, default=1,
        help="simulation worker processes (default: 1, in-process)",
    )
    rep.set_defaults(func=commands.cmd_report)

    pln = sub.add_parser(
        "plan",
        help="run one registered planner through the unified "
        "pipeline (shared PlanningContext, coverage check)",
    )
    pln.add_argument(
        "-p", "--planner", choices=_PLANNER_NAMES, default="Appro",
    )
    pln.add_argument("-n", "--num-sensors", type=int, default=100)
    pln.add_argument("-k", "--num-chargers", type=int, default=2)
    pln.add_argument("--seed", type=int, default=0)
    pln.set_defaults(func=commands.cmd_plan)

    flt = sub.add_parser(
        "faults",
        help="fault-injection campaign: algorithms under identical "
        "seeded fault draws",
    )
    flt.add_argument(
        "scenario", nargs="?", choices=scenario_names(),
        default="breakdown",
        help="named fault scenario (default: breakdown)",
    )
    flt.add_argument(
        "-a", "--algorithms", nargs="+", choices=_ALGORITHM_NAMES,
        help="algorithms to compare (default: all)",
    )
    flt.add_argument("-n", "--num-sensors", type=int, default=100)
    flt.add_argument("-k", "--num-chargers", type=int, default=3)
    flt.add_argument(
        "--trials", type=int, default=None,
        help="fault draws per algorithm (default: "
        "$REPRO_BENCH_FAULT_TRIALS or 100)",
    )
    flt.add_argument("--seed", type=int, default=0)
    flt.add_argument(
        "--workers", type=int, default=1,
        help="campaign worker processes, one algorithm per task "
        "(default: 1, in-process)",
    )
    flt.set_defaults(func=commands.cmd_faults)

    srv = sub.add_parser(
        "serve",
        help="run a JSONL batch of planning jobs through the "
        "cache-sharing worker pool",
    )
    srv.add_argument(
        "jobs",
        help="repro-job/1 JSONL file (see 'serve --demo' for a sample)",
    )
    srv.add_argument(
        "-o", "--output",
        help="write repro-result/1 JSONL here (default: stdout)",
    )
    srv.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default: 1, in-process)",
    )
    srv.add_argument(
        "--timeout", type=float, default=None,
        help="per-job execution bound in seconds (default: none)",
    )
    srv.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts for failed jobs (default: 0)",
    )
    srv.add_argument(
        "--backoff", type=float, default=0.0,
        help="base retry backoff in seconds, doubled per wave "
        "(default: 0)",
    )
    srv.add_argument(
        "--no-shared-context", action="store_true",
        help="build a cold, unshared planning context per job",
    )
    srv.add_argument(
        "--demo", action="store_true",
        help="first write a small demo job batch to the JOBS path, "
        "then run it",
    )
    srv.set_defaults(func=commands.cmd_serve)

    dmn = sub.add_parser(
        "daemon",
        help="run the always-on planning daemon: JSONL requests over "
        "stdin/stdout or a unix socket, with admission control and "
        "graceful SIGTERM drain",
    )
    dmn.add_argument(
        "--socket", default=None, metavar="PATH",
        help="unix socket to listen on (default: one stdio session)",
    )
    dmn.add_argument(
        "--config", default=None, metavar="JSON",
        help="DaemonConfig JSON file; SIGHUP reloads it "
        "(CLI flags override file values)",
    )
    dmn.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: 1, in-process)",
    )
    dmn.add_argument(
        "--timeout", type=float, default=None,
        help="per-job watchdog bound in seconds (default: none)",
    )
    dmn.add_argument(
        "--queue", type=int, default=None,
        help="admission queue capacity (default: 64)",
    )
    dmn.add_argument(
        "--max-requests", type=int, default=None,
        help="largest admissible request set (default: no cap)",
    )
    dmn.add_argument(
        "--degraded-planner", choices=_PLANNER_NAMES, default=None,
        help="planner used while the circuit breaker is open "
        "(default: K-EDF)",
    )
    dmn.set_defaults(func=commands.cmd_daemon)

    ldg = sub.add_parser(
        "loadgen",
        help="drive the planning daemon at a sustained offered rate "
        "and report latency percentiles + rejection ratio",
    )
    ldg.add_argument(
        "--workers", type=int, default=1,
        help="daemon worker processes (default: 1, in-process)",
    )
    ldg.add_argument(
        "--duration", type=float, default=5.0,
        help="seconds of sustained traffic (default: 5)",
    )
    ldg.add_argument(
        "--rate", type=float, default=None,
        help="offered jobs/second (default: measured capacity x "
        "overload factor)",
    )
    ldg.add_argument(
        "--overload", type=float, default=2.0,
        help="offered-rate multiplier over measured capacity when "
        "--rate is not given (default: 2.0)",
    )
    ldg.add_argument(
        "--queue", type=int, default=16,
        help="daemon admission queue capacity (default: 16)",
    )
    ldg.add_argument(
        "--seed", type=int, default=0,
        help="traffic corpus seed (default: 0)",
    )
    ldg.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the repro-bench/1 record here",
    )
    ldg.set_defaults(func=commands.cmd_loadgen)

    ins = sub.add_parser(
        "inspect",
        help="structural and load analysis of a stored instance",
    )
    ins.add_argument("instance", help="WRSN JSON (from 'generate')")
    ins.add_argument("-k", "--num-chargers", type=int, default=2)
    ins.add_argument(
        "--threshold", type=float, default=1.0,
        help="analyse the sensors below this residual fraction "
        "(default: everyone)",
    )
    ins.set_defaults(func=commands.cmd_inspect)

    lint = sub.add_parser(
        "lint",
        help="run the project's static-analysis rules over sources",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files/directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--select", nargs="+", metavar="RULE",
        help="only run these rule ids (default: all rules)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    lint.set_defaults(func=commands.cmd_lint)

    san = sub.add_parser(
        "sanitize",
        help="replan a seeded corpus under PYTHONHASHSEED × worker "
        "perturbation and byte-compare the results",
    )
    san.add_argument(
        "--jobs", default=None,
        help="existing repro-job/1 corpus (default: generate a seeded "
        "54-job corpus)",
    )
    san.add_argument(
        "--quick", action="store_true",
        help="small corpus and matrix for CI smoke runs",
    )
    san.add_argument(
        "--seed", type=int, default=0,
        help="corpus generation seed (default: 0)",
    )
    san.add_argument(
        "--hash-seeds", default=None, metavar="S,S,...",
        help="comma-separated PYTHONHASHSEED values (default: 0,1)",
    )
    san.add_argument(
        "--workers", default=None, metavar="N,N,...",
        help="comma-separated pool sizes (default: 1,2,4; "
        "with --quick: 1,2)",
    )
    san.add_argument(
        "--daemon", action="store_true",
        help="also run every matrix cell through the planning daemon "
        "and byte-compare against the batch-service baseline",
    )
    san.add_argument(
        "--online", action="store_true",
        help="also run cold/warm online-replanning cells per hash "
        "seed: perturb residuals per job and byte-compare a delta-"
        "invalidated warm replan against a cold context rebuild",
    )
    san.add_argument(
        "--plugin", default=None,
        help="module the child interpreters import before planning "
        "(registers extension planners)",
    )
    san.add_argument(
        "-o", "--output", default=None,
        help="write the repro-sanitize/1 JSON report here",
    )
    san.set_defaults(func=commands.cmd_sanitize)

    evl = sub.add_parser(
        "eval",
        help="head-to-head planner evaluation: all registered "
        "planners x scenario matrix x fault plans, one reproducible "
        "repro-eval/1 report and table",
    )
    evl.add_argument(
        "--quick", action="store_true",
        help="small grid for CI smoke runs; the quick report carries "
        "no timings and is byte-identical at any worker count",
    )
    evl.add_argument(
        "--workers", type=int, default=1,
        help="pool processes (default: 1; results are byte-identical "
        "at any count)",
    )
    evl.add_argument(
        "--seed", type=int, default=0,
        help="master seed for instances, residuals and fault plans "
        "(default: 0)",
    )
    evl.add_argument(
        "--markdown", action="store_true",
        help="render the tables as markdown instead of ASCII",
    )
    evl.add_argument(
        "--cells", action="store_true",
        help="also print the per-cell detail table",
    )
    evl.add_argument(
        "-o", "--output", default=None,
        help="write the repro-eval/1 JSON report here",
    )
    evl.add_argument(
        "--bench", default=None, metavar="PATH",
        help="also write a repro-bench/1 record (BENCH_eval.json)",
    )
    evl.set_defaults(func=commands.cmd_eval)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
