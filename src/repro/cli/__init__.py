"""Command-line interface.

``python -m repro`` exposes the library's main workflows without
writing code:

* ``generate`` — create and save a paper-parameter WRSN instance;
* ``schedule`` — run one algorithm on an instance and report/save the
  schedule;
* ``simulate`` — the long-horizon monitoring simulation;
* ``bench`` — regenerate a paper figure as tables and ASCII plots;
* ``compare`` — all five algorithms side by side on one instance.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
