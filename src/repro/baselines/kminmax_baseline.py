"""K-minMax: min-max K closed tours over all sensors (Liang et al.).

Paper description (Section VI-A, benchmark (iii)): find ``K``
node-disjoint closed tours visiting every to-be-charged sensor so that
the longest tour delay is minimised — the 5-approximation of Liang et
al. — but charging remains *one-to-one*: the vehicle stops at every
sensor and charges it individually.

This is the strongest baseline in the paper (it shares Appro's min-max
tour machinery) and the gap between it and ``Appro`` isolates the value
of multi-node charging: K-minMax must visit all ``|V_s|`` sensors,
Appro only ``|S_I|`` sojourn disks.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.baselines.common import (
    BaselineSchedule,
    build_itinerary,
    charge_times_for_requests,
)
from repro.energy.charging import ChargerSpec
from repro.geometry.distcache import DistanceCache
from repro.network.topology import WRSN
from repro.tours.kminmax import solve_k_minmax_tours


def kminmax_baseline_schedule(
    network: WRSN,
    request_ids: Sequence[int],
    num_chargers: int,
    charger: Optional[ChargerSpec] = None,
    tsp_method: str = "christofides",
    context: Optional[Any] = None,
) -> BaselineSchedule:
    """Schedule the request set with the K-minMax baseline.

    Args:
        network: the WRSN instance.
        request_ids: the to-be-charged sensors ``V_s``.
        num_chargers: ``K``.
        charger: MCV parameters (paper defaults when omitted).
        tsp_method: backbone TSP construction (see
            :func:`repro.tours.tsp.build_tsp_order`). Large request
            sets automatically fall back from Christofides to the
            2-approximation for tractability.
        context: optional ``repro.pipeline.PlanningContext`` (duck
            typed) supplying the shared distance cache, memoized
            charge times and memoized min-max tour solutions.

    Returns:
        A :class:`~repro.baselines.common.BaselineSchedule`.
    """
    if num_chargers <= 0:
        raise ValueError(f"num_chargers must be positive, got {num_chargers}")
    spec = charger if charger is not None else ChargerSpec()
    requests = sorted(set(request_ids))
    positions = network.positions()
    depot = network.depot.position
    if context is not None:
        dist = context.distance
        charge_times = context.charge_times_for(requests)
    else:
        dist = DistanceCache(positions, depot)
        charge_times = charge_times_for_requests(network, requests, spec)

    # Christofides' matching step is O(n^3)-ish; over every sensor
    # (rather than Appro's far smaller sojourn set) it becomes the
    # bottleneck, so large instances use the MST 2-approximation.
    method = tsp_method
    if method == "christofides" and len(requests) > 400:
        method = "double_mst"

    if context is not None:
        tours, _ = context.minmax_tours(
            requests, num_chargers, charge_times, tsp_method=method
        )
    else:
        tours, _ = solve_k_minmax_tours(
            requests,
            positions,
            depot,
            num_chargers,
            spec.travel_speed_mps,
            service=lambda sid: charge_times[sid],
            tsp_method=method,
            dist=dist,
        )
    itineraries = [
        build_itinerary(tour, positions, depot, spec, charge_times, dist=dist)
        for tour in tours
    ]
    return BaselineSchedule(depot, positions, spec, itineraries, distance=dist)
