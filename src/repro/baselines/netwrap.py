"""NETWRAP: greedy next-sensor selection per charger (Wang et al.).

Paper description (Section VI-A, benchmark (ii)): each MCV selects as
its next target the to-be-charged sensor with the minimum *weighted
sum* of (a) the travel time from the MCV's current location and (b) the
sensor's residual lifetime; ties broken arbitrarily when a sensor is
wanted by multiple MCVs.

We run the natural event-driven realisation: vehicles act in the order
they become free; the free vehicle claims the unclaimed sensor with the
best score. Both terms are normalised by their instance-wide maxima so
the weighting is scale-free; ``travel_weight`` tunes the trade-off
(0.5 = equal weight, the default).
"""

from __future__ import annotations

import heapq
import math
from typing import Any, List, Mapping, Optional, Sequence, Set

from repro.baselines.common import (
    BaselineSchedule,
    Visit,
    charge_times_for_requests,
    default_lifetimes,
)
from repro.energy.charging import ChargerSpec
from repro.geometry.distcache import DistanceCache
from repro.network.topology import WRSN


def netwrap_schedule(
    network: WRSN,
    request_ids: Sequence[int],
    num_chargers: int,
    charger: Optional[ChargerSpec] = None,
    lifetimes: Optional[Mapping[int, float]] = None,
    travel_weight: float = 0.5,
    context: Optional[Any] = None,
) -> BaselineSchedule:
    """Schedule the request set with the NETWRAP greedy heuristic.

    Args:
        network: the WRSN instance.
        request_ids: the to-be-charged sensors ``V_s``.
        num_chargers: ``K``.
        charger: MCV parameters (paper defaults when omitted).
        lifetimes: residual lifetime per requested sensor (seconds).
        travel_weight: weight of the normalised travel-time term;
            ``1 - travel_weight`` goes to the normalised residual
            lifetime. Must lie in ``[0, 1]``.
        context: optional ``repro.pipeline.PlanningContext`` (duck
            typed) supplying the shared distance cache and memoized
            charge times.

    Returns:
        A :class:`~repro.baselines.common.BaselineSchedule`.
    """
    if num_chargers <= 0:
        raise ValueError(f"num_chargers must be positive, got {num_chargers}")
    if not 0.0 <= travel_weight <= 1.0:
        raise ValueError(f"travel_weight must be in [0, 1]: {travel_weight}")
    spec = charger if charger is not None else ChargerSpec()
    requests = sorted(set(request_ids))
    positions = network.positions()
    depot = network.depot.position
    if context is not None:
        dist = context.distance
        charge_times = context.charge_times_for(requests)
    else:
        dist = DistanceCache(positions, depot)
        charge_times = charge_times_for_requests(network, requests, spec)
    life = default_lifetimes(network, requests, lifetimes)

    max_life = max(life.values(), default=1.0) or 1.0
    diag = (
        math.hypot(network.field.width, network.field.height)
        / spec.travel_speed_mps
    )

    unclaimed: Set[int] = set(requests)
    itineraries: List[List[Visit]] = [[] for _ in range(num_chargers)]
    # (time_free, mcv_index) heap; all vehicles start at the depot at 0.
    free_at = [(0.0, k) for k in range(num_chargers)]
    heapq.heapify(free_at)
    # Vehicle locations as sensor labels (``None`` = at the depot).
    locations: dict = {k: None for k in range(num_chargers)}

    while unclaimed:
        now, k = heapq.heappop(free_at)

        def score(sid: int) -> float:
            travel = dist(locations[k], sid) / spec.travel_speed_mps
            return (
                travel_weight * travel / max(diag, 1e-12)
                + (1.0 - travel_weight) * life[sid] / max_life
            )

        target = min(unclaimed, key=lambda sid: (score(sid), sid))
        unclaimed.discard(target)
        travel_s = dist(locations[k], target) / spec.travel_speed_mps
        arrival = now + travel_s
        finish = arrival + charge_times[target]
        itineraries[k].append(
            Visit(sensor_id=target, arrival_s=arrival, finish_s=finish)
        )
        locations[k] = target
        heapq.heappush(free_at, (finish, k))

    return BaselineSchedule(depot, positions, spec, itineraries, distance=dist)
