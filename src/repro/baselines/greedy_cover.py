"""GreedyCover: a multi-node set-cover heuristic (extension baseline).

Not one of the paper's four baselines — an additional comparison point
that isolates *which part* of ``Appro``'s advantage comes from
multi-node charging itself and which from the MIS/conflict machinery.

GreedyCover uses multi-node charging but nothing else from Algorithm 1:

1. pick sojourn locations by the classic greedy set cover — repeatedly
   stop at the sensor location whose charging disk covers the most
   still-uncovered requested sensors;
2. cover the chosen locations with K min-max tours (same subroutine as
   everyone else);
3. ignore the no-simultaneous-charging constraint during construction,
   then repair any cross-tour overlaps by inserting waits.

Because greedy set cover picks *fewer, denser* stops than an MIS but
pays with disk overlaps (and therefore conflicts and repair waits), the
comparison against ``Appro`` in ``benchmarks/test_ablation_greedy.py``
shows the cost of ignoring the constraint.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Set

from repro.core.schedule import ChargingSchedule
from repro.core.validation import resolve_conflicts
from repro.energy.charging import ChargerSpec, full_charge_time
from repro.geometry.distcache import DistanceCache
from repro.graphs.coverage import coverage_sets
from repro.network.topology import WRSN
from repro.tours.kminmax import solve_k_minmax_tours


def greedy_cover_schedule(
    network: WRSN,
    request_ids: Sequence[int],
    num_chargers: int,
    charger: Optional[ChargerSpec] = None,
    enforce_feasibility: bool = True,
    context: Optional[Any] = None,
) -> ChargingSchedule:
    """Schedule the request set with the GreedyCover heuristic.

    Args:
        network: the WRSN instance.
        request_ids: the to-be-charged sensors ``V_s``.
        num_chargers: ``K``.
        charger: MCV parameters (paper defaults when omitted).
        enforce_feasibility: repair cross-tour overlaps with waits.
        context: optional ``repro.pipeline.PlanningContext`` (duck
            typed) supplying the shared distance cache and memoized
            charge times, coverage sets and min-max tour solutions.

    Returns:
        A :class:`~repro.core.schedule.ChargingSchedule` (same surface
        as ``Appro``'s result, so the validator and simulator apply).
    """
    if num_chargers <= 0:
        raise ValueError(f"num_chargers must be positive, got {num_chargers}")
    spec = charger if charger is not None else ChargerSpec()
    requests = sorted(set(request_ids))
    positions = network.positions()
    depot = network.depot.position
    if context is not None:
        dist = context.distance
        charge_times = context.charge_times_for(requests)
        # Every requested sensor location is a candidate sojourn
        # location.
        coverage = context.coverage_for(requests)
    else:
        dist = DistanceCache(positions, depot)
        charge_times = {
            sid: full_charge_time(
                network.sensor(sid).capacity_j,
                network.sensor(sid).residual_j,
                spec.charge_rate_w,
            )
            for sid in requests
        }
        coverage = coverage_sets(
            requests, positions, spec.charge_radius_m, targets=requests
        )

    # 1. Greedy set cover.
    uncovered: Set[int] = set(requests)
    chosen: List[int] = []
    while uncovered:
        best = max(
            requests,
            key=lambda c: (len(coverage[c] & uncovered), -c),
        )
        gain = coverage[best] & uncovered
        if not gain:  # cannot happen while uncovered sensors remain
            best = min(uncovered)
            gain = {best}
        chosen.append(best)
        uncovered -= gain

    schedule = ChargingSchedule(
        depot=depot,
        positions=positions,
        coverage=coverage,
        charge_times=charge_times,
        charger=spec,
        num_tours=num_chargers,
        distance=dist,
    )

    # 2. K min-max tours over the chosen stops, weighted by the full
    # sojourn bound (residual durations are fixed at append time).
    tau = {
        c: max(
            (charge_times[u] for u in coverage[c] if u in charge_times),
            default=0.0,
        )
        for c in chosen
    }
    if context is not None:
        tours, _ = context.minmax_tours(chosen, num_chargers, tau)
    else:
        tours, _ = solve_k_minmax_tours(
            chosen,
            positions,
            depot,
            num_chargers,
            spec.travel_speed_mps,
            service=lambda c: tau[c],
            dist=dist,
        )
    for k, tour in enumerate(tours):
        for node in tour:
            schedule.append_stop(k, node)

    # 3. Constraint repair.
    if enforce_feasibility:
        resolve_conflicts(schedule)
    return schedule
