"""The four baselines of the paper's evaluation (Section VI-A).

All four are *one-to-one* chargers — each MCV charges a single sensor
at a time at its location — which is exactly why ``Appro`` beats them:
their tour length and total charging time scale with the number of
sensors, while ``Appro``'s scale with the number of sojourn disks.

* :mod:`repro.baselines.kedf` — Earliest Deadline First with K MCVs:
  urgency-sorted groups of K, assigned to vehicles by a min-cost
  matching on travel distance.
* :mod:`repro.baselines.netwrap` — each MCV greedily picks the next
  sensor minimising a weighted sum of travel time and residual
  lifetime (Wang et al.).
* :mod:`repro.baselines.aa` — K-means partition into K groups, one MCV
  per group (Wang et al.).
* :mod:`repro.baselines.kminmax_baseline` — K node-disjoint min-max
  closed tours over all requested sensors (Liang et al.,
  5-approximation), still charging one sensor per stop.
"""

from repro.baselines.aa import aa_schedule
from repro.baselines.common import BaselineSchedule, Visit
from repro.baselines.greedy_cover import greedy_cover_schedule
from repro.baselines.kedf import kedf_schedule
from repro.baselines.kminmax_baseline import kminmax_baseline_schedule
from repro.baselines.netwrap import netwrap_schedule

__all__ = [
    "BaselineSchedule",
    "Visit",
    "aa_schedule",
    "greedy_cover_schedule",
    "kedf_schedule",
    "kminmax_baseline_schedule",
    "netwrap_schedule",
]
