"""K-EDF: Earliest Deadline First with K mobile chargers.

Paper description (Section VI-A, benchmark (i)): sort the to-be-charged
sensors by residual lifetime ascending, partition them into consecutive
groups of ``K`` (the last group may be smaller), and assign the ``K``
sensors of each group to the ``K`` MCVs so the total travel distance
from the vehicles' current locations is minimised — a linear assignment
problem, solved here with ``scipy.optimize.linear_sum_assignment``.

Each MCV serves its per-group assignments in order, charging one sensor
at a time (one-to-one), then returns to the depot.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.baselines.common import (
    BaselineSchedule,
    build_itinerary,
    charge_times_for_requests,
    default_lifetimes,
)
from repro.energy.charging import ChargerSpec
from repro.geometry.distcache import DistanceCache
from repro.network.topology import WRSN


def kedf_schedule(
    network: WRSN,
    request_ids: Sequence[int],
    num_chargers: int,
    charger: Optional[ChargerSpec] = None,
    lifetimes: Optional[Mapping[int, float]] = None,
    context: Optional[Any] = None,
) -> BaselineSchedule:
    """Schedule the request set with the K-EDF heuristic.

    Args:
        network: the WRSN instance.
        request_ids: the to-be-charged sensors ``V_s``.
        num_chargers: ``K``.
        charger: MCV parameters (paper defaults when omitted).
        lifetimes: residual lifetime per requested sensor in seconds;
            drives the EDF order. Falls back to a rate-proportional
            estimate when omitted.
        context: optional ``repro.pipeline.PlanningContext`` (duck
            typed — this layer cannot import the pipeline) supplying
            the shared distance cache and memoized charge times.

    Returns:
        A :class:`~repro.baselines.common.BaselineSchedule`.
    """
    if num_chargers <= 0:
        raise ValueError(f"num_chargers must be positive, got {num_chargers}")
    spec = charger if charger is not None else ChargerSpec()
    requests = sorted(set(request_ids))
    positions = network.positions()
    depot = network.depot.position
    if context is not None:
        dist = context.distance
        charge_times = context.charge_times_for(requests)
    else:
        dist = DistanceCache(positions, depot)
        charge_times = charge_times_for_requests(network, requests, spec)
    life = default_lifetimes(network, requests, lifetimes)

    # EDF order: most urgent first.
    ordered = sorted(requests, key=lambda sid: (life[sid], sid))

    # Per-MCV assignment sequences built group by group.
    sequences: List[List[int]] = [[] for _ in range(num_chargers)]
    # Track each vehicle's location after its already-assigned visits
    # (``None`` = still at the depot).
    locations: List[Optional[int]] = [None for _ in range(num_chargers)]
    for g in range(0, len(ordered), num_chargers):
        group = ordered[g : g + num_chargers]
        cost = np.array(
            [
                [dist(locations[k], sid) for sid in group]
                for k in range(num_chargers)
            ]
        )
        rows, cols = linear_sum_assignment(cost)
        for k, j in zip(rows, cols):
            sid = group[j]
            sequences[k].append(sid)
            locations[k] = sid

    itineraries = [
        build_itinerary(seq, positions, depot, spec, charge_times, dist=dist)
        for seq in sequences
    ]
    return BaselineSchedule(depot, positions, spec, itineraries, distance=dist)
