"""Shared machinery for the one-to-one baselines.

Every baseline produces a :class:`BaselineSchedule`: per MCV, a
time-stamped sequence of :class:`Visit` records (travel to a sensor,
charge it fully, move on) plus the closing leg back to the depot. The
type intentionally mirrors the reporting surface of
:class:`repro.core.schedule.ChargingSchedule` — ``longest_delay()``,
``tour_delays()``, ``sensor_finish_times()`` — so the simulator and the
benchmark harness treat all five algorithms uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.energy.charging import ChargerSpec, full_charge_time
from repro.geometry.distcache import DistanceCache
from repro.geometry.point import Point
from repro.network.topology import WRSN

#: Pairwise distance lookup over sensor ids; ``None`` means the depot.
DistanceFn = Callable[[Optional[int], Optional[int]], float]


@dataclass(frozen=True)
class Visit:
    """One one-to-one charging visit.

    Attributes:
        sensor_id: the sensor charged.
        arrival_s: arrival time at the sensor's location.
        finish_s: when the sensor reaches full capacity.
    """

    sensor_id: int
    arrival_s: float
    finish_s: float

    @property
    def duration_s(self) -> float:
        return self.finish_s - self.arrival_s


class BaselineSchedule:
    """Result of a one-to-one baseline: K time-stamped itineraries."""

    def __init__(
        self,
        depot: Point,
        positions: Mapping[int, Point],
        charger: ChargerSpec,
        itineraries: Sequence[Sequence[Visit]],
        distance: Optional[DistanceFn] = None,
    ):
        self.depot = depot
        self.positions = positions
        self.charger = charger
        self.distance: DistanceFn = (
            distance
            if distance is not None
            else DistanceCache(positions, depot)
        )
        self.itineraries: List[List[Visit]] = [list(it) for it in itineraries]

    @property
    def num_tours(self) -> int:
        return len(self.itineraries)

    def tour_delay(self, k: int) -> float:
        """Total delay of MCV ``k`` including the return to the depot."""
        itinerary = self.itineraries[k]
        if not itinerary:
            return 0.0
        last = itinerary[-1]
        back = (
            self.distance(last.sensor_id, None)
            / self.charger.travel_speed_mps
        )
        return last.finish_s + back

    def tour_delays(self) -> List[float]:
        return [self.tour_delay(k) for k in range(self.num_tours)]

    def longest_delay(self) -> float:
        """The objective value ``max_k T'(k)``."""
        return max(self.tour_delays(), default=0.0)

    def sensor_finish_times(self) -> Dict[int, float]:
        """When each visited sensor is fully charged."""
        return {
            v.sensor_id: v.finish_s
            for itinerary in self.itineraries
            for v in itinerary
        }

    def visited_sensors(self) -> List[int]:
        """All sensors visited, across all MCVs."""
        return [
            v.sensor_id for itinerary in self.itineraries for v in itinerary
        ]


def charge_times_for_requests(
    network: WRSN, requests: Sequence[int], charger: ChargerSpec
) -> Dict[int, float]:
    """Eq. (1) full-charge time per requested sensor."""
    return {
        sid: full_charge_time(
            network.sensor(sid).capacity_j,
            network.sensor(sid).residual_j,
            charger.charge_rate_w,
        )
        for sid in requests
    }


def build_itinerary(
    sequence: Sequence[int],
    positions: Mapping[int, Point],
    depot: Point,
    charger: ChargerSpec,
    charge_times: Mapping[int, float],
    start_time_s: float = 0.0,
    dist: Optional[DistanceFn] = None,
) -> List[Visit]:
    """Walk one MCV through ``sequence``, producing timed visits.

    The vehicle starts at the depot at ``start_time_s``, drives to each
    sensor in order and charges it fully before moving on.
    """
    if dist is None:
        dist = DistanceCache(positions, depot)
    visits: List[Visit] = []
    clock = start_time_s
    here: Optional[int] = None
    for sid in sequence:
        clock += dist(here, sid) / charger.travel_speed_mps
        arrival = clock
        clock += charge_times[sid]
        visits.append(Visit(sensor_id=sid, arrival_s=arrival, finish_s=clock))
        here = sid
    return visits


def default_lifetimes(
    network: WRSN,
    requests: Sequence[int],
    lifetimes: Optional[Mapping[int, float]],
) -> Dict[int, float]:
    """Residual lifetime per requested sensor, in seconds.

    When the caller (typically the simulator) does not supply true
    lifetimes, fall back to residual energy divided by a nominal draw
    proportional to the sensor's own data rate — preserving the
    urgency *ordering* that EDF-style baselines rely on.
    """
    if lifetimes is not None:
        return {sid: float(lifetimes[sid]) for sid in requests}
    out: Dict[int, float] = {}
    for sid in requests:
        sensor = network.sensor(sid)
        nominal_draw_w = max(sensor.data_rate_bps * 55e-9, 1e-12)
        out[sid] = sensor.residual_j / nominal_draw_w
    return out
