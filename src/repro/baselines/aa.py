"""AA: K-means partition, one charger per cluster (Wang et al.).

Paper description (Section VI-A, benchmark (iv)): partition the
to-be-charged sensors into ``K`` groups with K-means, dedicate one MCV
to each group, and have it charge the group's sensors one-to-one.

The original AA charges only a *proportion* of each group — those
reachable before expiration — to maximise delivered energy minus
travel cost. Our reproduction charges every sensor in the group (in
nearest-neighbour order from the depot) so that all five algorithms
serve identical request sets and their longest delays are directly
comparable; this matches how the paper reports AA's (much longer)
tour durations. The substitution is recorded in DESIGN.md.

K-means is implemented here directly (Lloyd's algorithm, seeded,
K-means++ initialisation) to keep the baseline deterministic across
scipy versions.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from repro.baselines.common import (
    BaselineSchedule,
    build_itinerary,
    charge_times_for_requests,
)
from repro.energy.charging import ChargerSpec
from repro.geometry.distcache import DistanceCache
from repro.network.topology import WRSN
from repro.tours.tsp import nearest_neighbor_tour


def kmeans_partition(
    coords: np.ndarray,
    num_clusters: int,
    seed: int = 0,
    max_iter: int = 100,
) -> np.ndarray:
    """Lloyd's K-means with K-means++ seeding.

    Args:
        coords: ``(n, 2)`` array of positions.
        num_clusters: number of clusters ``K``; capped at ``n``.
        seed: RNG seed.
        max_iter: Lloyd iteration cap.

    Returns:
        ``(n,)`` integer array of cluster labels in ``[0, K)``.
    """
    n = coords.shape[0]
    k = min(num_clusters, n)
    if k <= 0:
        raise ValueError(f"num_clusters must be positive, got {num_clusters}")
    rng = np.random.default_rng(seed)

    # K-means++ initialisation.
    centers = np.empty((k, 2))
    first = int(rng.integers(0, n))
    centers[0] = coords[first]
    closest_sq = ((coords - centers[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            centers[j:] = coords[first]
            break
        probs = closest_sq / total
        pick = int(rng.choice(n, p=probs))
        centers[j] = coords[pick]
        dist_sq = ((coords - centers[j]) ** 2).sum(axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)

    labels = np.zeros(n, dtype=int)
    for _ in range(max_iter):
        dists = ((coords[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = dists.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = coords[labels == j]
            if len(members) > 0:
                centers[j] = members.mean(axis=0)
    return labels


def aa_schedule(
    network: WRSN,
    request_ids: Sequence[int],
    num_chargers: int,
    charger: Optional[ChargerSpec] = None,
    seed: int = 0,
    context: Optional[Any] = None,
) -> BaselineSchedule:
    """Schedule the request set with the AA clustering heuristic.

    Args:
        network: the WRSN instance.
        request_ids: the to-be-charged sensors ``V_s``.
        num_chargers: ``K`` (also the number of K-means clusters).
        charger: MCV parameters (paper defaults when omitted).
        seed: K-means seed.
        context: optional ``repro.pipeline.PlanningContext`` (duck
            typed) supplying the shared distance cache and memoized
            charge times.

    Returns:
        A :class:`~repro.baselines.common.BaselineSchedule`.
    """
    if num_chargers <= 0:
        raise ValueError(f"num_chargers must be positive, got {num_chargers}")
    spec = charger if charger is not None else ChargerSpec()
    requests = sorted(set(request_ids))
    positions = network.positions()
    depot = network.depot.position
    if context is not None:
        dist = context.distance
        charge_times = context.charge_times_for(requests)
    else:
        dist = DistanceCache(positions, depot)
        charge_times = charge_times_for_requests(network, requests, spec)

    def sentinel_dist(a, b):
        # nearest_neighbor_tour runs in "DEPOT"-sentinel label space.
        return dist(None if a == "DEPOT" else a, None if b == "DEPOT" else b)

    itineraries: List = [[] for _ in range(num_chargers)]
    if requests:
        coords = np.array(
            [[positions[sid].x, positions[sid].y] for sid in requests]
        )
        labels = kmeans_partition(coords, num_chargers, seed=seed)
        for k in range(num_chargers):
            group = [sid for sid, lab in zip(requests, labels) if lab == k]
            if not group:
                continue
            # Serve the cluster in nearest-neighbour order from the
            # depot (the vehicle has to start there anyway).
            order = nearest_neighbor_tour(
                group + ["DEPOT"],
                {**{sid: positions[sid] for sid in group}, "DEPOT": depot},
                "DEPOT",
                sentinel_dist,
            )[1:]
            itineraries[k] = build_itinerary(
                order, positions, depot, spec, charge_times, dist=dist
            )
    return BaselineSchedule(depot, positions, spec, itineraries, distance=dist)
