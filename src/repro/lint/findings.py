"""The :class:`Finding` record every lint rule emits.

A finding pins one defect to a ``file:line`` span with a stable rule
id, a severity, and a human-readable message. The engine sorts and
formats findings; rules only construct them.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Iterable, List


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the build (architecture and invariant
    violations); ``WARNING`` findings fail ``repro lint`` by default
    but can be tolerated with ``--warnings-ok``.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One defect found by a lint rule.

    Attributes:
        path: file the finding is in (as given to the engine).
        line: 1-based line number (0 for whole-file findings).
        col: 0-based column offset.
        rule: stable rule id, e.g. ``"float-eq"``.
        severity: :class:`Severity` of the defect.
        message: human-readable description.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str

    def format_text(self) -> str:
        """``file:line:col: severity [rule] message`` (one line)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value} [{self.rule}] {self.message}"
        )


def format_findings_text(findings: Iterable[Finding]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    items = sorted(findings)
    lines = [f.format_text() for f in items]
    n_err = sum(1 for f in items if f.severity is Severity.ERROR)
    n_warn = len(items) - n_err
    lines.append(
        f"{len(items)} finding(s): {n_err} error(s), {n_warn} warning(s)"
    )
    return "\n".join(lines)


#: Version tag of the JSON report envelope.
LINT_FORMAT = "repro-lint/1"


def format_findings_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report: a versioned ``repro-lint/1`` envelope.

    The envelope is a stable contract for CI consumers::

        {
          "format": "repro-lint/1",
          "findings": [
            {"path", "line", "col", "rule", "severity", "message"},
            ...
          ],
          "summary": {"total": N, "errors": E, "warnings": W}
        }

    Findings are sorted (path, line, col, rule) and keys are emitted
    sorted, so reports diff cleanly between runs.
    """
    items = sorted(findings)
    payload: List[dict] = [
        {
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "rule": f.rule,
            "severity": f.severity.value,
            "message": f.message,
        }
        for f in items
    ]
    n_err = sum(1 for f in items if f.severity is Severity.ERROR)
    envelope = {
        "format": LINT_FORMAT,
        "findings": payload,
        "summary": {
            "total": len(items),
            "errors": n_err,
            "warnings": len(items) - n_err,
        },
    }
    return json.dumps(envelope, indent=2, sort_keys=True)


__all__ = [
    "Finding",
    "LINT_FORMAT",
    "Severity",
    "format_findings_json",
    "format_findings_text",
]
