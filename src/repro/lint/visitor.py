"""AST visitor base for per-file lint rules.

:class:`RuleVisitor` walks a file's AST and collects findings through
:meth:`report`, which applies the file's suppression pragmas so
individual rules never have to think about them. An AST-based
:class:`~repro.lint.registry.FileRule` typically pairs with one
visitor subclass::

    class _Visitor(RuleVisitor):
        def visit_Compare(self, node):
            if looks_bad(node):
                self.report(node, "explain the defect")
            self.generic_visit(node)

    @register
    class MyRule(FileRule):
        id = "my-rule"
        def check_file(self, ctx):
            return _Visitor(self, ctx).run()
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule


class RuleVisitor(ast.NodeVisitor):
    """An :class:`ast.NodeVisitor` that accumulates findings."""

    def __init__(self, rule: Rule, ctx: FileContext):
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding at ``node`` unless a pragma silences it.

        A pragma on *any* physical line of the flagged statement
        counts — multi-line calls usually carry the comment on their
        closing line.
        """
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        end_line = getattr(node, "end_lineno", None) or line
        if self.ctx.pragmas.suppressed_span(self.rule.id, line, end_line):
            return
        self.findings.append(self.rule.finding(self.ctx, line, col, message))

    def run(self) -> List[Finding]:
        """Visit the whole file and return the findings."""
        self.visit(self.ctx.tree)
        return self.findings


__all__ = ["RuleVisitor"]
