"""Per-file context handed to every lint rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.lint.pragmas import PragmaIndex


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file.

    Attributes:
        path: absolute path of the file.
        display_path: path as given on the command line (what findings
            report).
        source: full source text.
        lines: source split into lines (1-based access via
            ``lines[lineno - 1]``).
        tree: the parsed :mod:`ast` module.
        pragmas: suppression pragmas found in the file.
        module_name: dotted module name when the file lives under a
            ``repro`` package tree (``repro.energy.battery``), else
            ``None``.
        in_tests: whether the file lives under a ``tests`` directory
            (some rules, e.g. seeded-rng, do not apply there).
    """

    path: Path
    display_path: str
    source: str
    lines: List[str]
    tree: ast.Module
    pragmas: PragmaIndex
    module_name: Optional[str]
    in_tests: bool

    @classmethod
    def from_source(
        cls, path: Path, source: str, display_path: Optional[str] = None
    ) -> "FileContext":
        """Parse ``source`` and build the full context for ``path``."""
        lines = source.splitlines()
        return cls(
            path=path,
            display_path=display_path or str(path),
            source=source,
            lines=lines,
            tree=ast.parse(source, filename=str(path)),
            pragmas=PragmaIndex(lines),
            module_name=_module_name_of(path),
            in_tests="tests" in path.parts,
        )


def _module_name_of(path: Path) -> Optional[str]:
    """Dotted module name for files under a ``repro`` package tree."""
    parts: Tuple[str, ...] = path.parts
    if "repro" not in parts:
        return None
    root = len(parts) - 1 - tuple(reversed(parts)).index("repro")
    rel = parts[root:]
    if rel[-1].endswith(".py"):
        rel = rel[:-1] + (rel[-1][: -len(".py")],)
    # ``__init__`` is kept so relative-import resolution is uniform:
    # one dot always strips exactly the final component.
    return ".".join(rel)


__all__ = ["FileContext"]
