"""Project-level resolution context shared by the project rules.

Per-file AST rules cannot answer cross-module questions — "is the
callable handed to ``run_tasks`` a module-level function *somewhere*?"
(R10) or "which package owns ``PlanningContext``'s memo fields?"
(R11). This module builds a light project index once per lint run:

* per linted module, its top-level function and class definitions and
  an import table mapping every locally bound name to the absolute
  dotted name it came from;
* :meth:`ProjectContext.resolve` follows those import edges (bounded,
  cycle-safe) until it lands on a definition, an external module, or
  gives up;
* :meth:`ProjectContext.call_graph` derives a best-effort static call
  graph over the module-level functions — each function's qualified
  name mapped to the qualified names it calls — which rules use to
  reason one hop beyond the file they are looking at.

The index is intentionally syntactic: no imports are executed, so the
linter stays safe on broken or cyclic code (files that fail to parse
simply do not appear).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.context import FileContext

#: What a name resolved to, project-wide.
KIND_FUNCTION = "function"
KIND_CLASS = "class"
KIND_EXTERNAL = "external"
KIND_UNKNOWN = "unknown"


@dataclass
class ModuleIndex:
    """Everything the project rules need to know about one module."""

    context: FileContext
    #: Module-level function definitions by name.
    functions: Dict[str, ast.AST] = field(default_factory=dict)
    #: Module-level class definitions by name.
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)
    #: Locally bound name -> absolute dotted origin
    #: (``execute_plan_job`` -> ``repro.serve.workers.execute_plan_job``).
    imports: Dict[str, str] = field(default_factory=dict)


def _resolve_relative(
    module_name: str, level: int, module: Optional[str]
) -> Optional[str]:
    """Absolute dotted base of a relative import (``from .. import x``)."""
    parts = module_name.split(".")
    if level >= len(parts):
        return None
    prefix = ".".join(parts[:-level])
    if module:
        return f"{prefix}.{module}" if prefix else module
    return prefix or None


def _index_module(ctx: FileContext) -> ModuleIndex:
    index = ModuleIndex(context=ctx)
    module_name = ctx.module_name or ""
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            index.functions[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            index.classes[stmt.name] = stmt
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                index.imports[bound] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level:
                base = _resolve_relative(
                    module_name, stmt.level, stmt.module
                )
            else:
                base = stmt.module
            if base is None:
                continue
            for alias in stmt.names:
                bound = alias.asname or alias.name
                index.imports[bound] = f"{base}.{alias.name}"
    return index


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving a name project-wide.

    Attributes:
        kind: one of :data:`KIND_FUNCTION`, :data:`KIND_CLASS`,
            :data:`KIND_EXTERNAL`, :data:`KIND_UNKNOWN`.
        qualified: absolute dotted name of the resolved target (best
            known, even when the target itself is external).
        module: the indexed module holding the definition, when found.
    """

    kind: str
    qualified: str
    module: Optional[str] = None


class ProjectContext:
    """Cross-module resolution index over one lint run's files."""

    def __init__(self, modules: Dict[str, ModuleIndex]):
        self.modules = modules

    @classmethod
    def from_contexts(
        cls, contexts: Sequence[FileContext]
    ) -> "ProjectContext":
        modules: Dict[str, ModuleIndex] = {}
        for ctx in contexts:
            if ctx.module_name is not None:
                modules[ctx.module_name] = _index_module(ctx)
        return cls(modules)

    # ------------------------------------------------------------------

    def module(self, name: str) -> Optional[ModuleIndex]:
        """The indexed module, trying both plain and package forms."""
        found = self.modules.get(name)
        if found is None:
            found = self.modules.get(f"{name}.__init__")
        return found

    def resolve(self, module_name: str, name: str) -> Resolution:
        """Resolve ``name`` as seen from ``module_name``, project-wide.

        Follows import edges through the indexed modules (cycle-safe)
        until the name lands on a module-level function or class, an
        un-indexed (external) module, or runs out of information.
        """
        seen: Set[Tuple[str, str]] = set()
        current_module, current_name = module_name, name
        qualified = f"{module_name}.{name}"
        while (current_module, current_name) not in seen:
            seen.add((current_module, current_name))
            index = self.module(current_module)
            if index is None:
                return Resolution(kind=KIND_EXTERNAL, qualified=qualified)
            if current_name in index.functions:
                return Resolution(
                    kind=KIND_FUNCTION,
                    qualified=f"{current_module}.{current_name}",
                    module=current_module,
                )
            if current_name in index.classes:
                return Resolution(
                    kind=KIND_CLASS,
                    qualified=f"{current_module}.{current_name}",
                    module=current_module,
                )
            origin = index.imports.get(current_name)
            if origin is None:
                return Resolution(kind=KIND_UNKNOWN, qualified=qualified)
            qualified = origin
            if "." not in origin:
                # ``import numpy`` style: a bare module binding.
                return Resolution(kind=KIND_EXTERNAL, qualified=origin)
            current_module, current_name = origin.rsplit(".", 1)
        return Resolution(kind=KIND_UNKNOWN, qualified=qualified)

    # ------------------------------------------------------------------

    def call_graph(self) -> Dict[str, FrozenSet[str]]:
        """Static call graph over the module-level functions.

        Each key is a qualified function name
        (``repro.serve.service.run``); each value the set of qualified
        names its body calls, resolved through the import tables where
        possible. Unresolvable targets keep their local spelling
        prefixed with the calling module, so the graph stays total.
        """
        graph: Dict[str, FrozenSet[str]] = {}
        for module_name, index in self.modules.items():
            for func_name, func_node in index.functions.items():
                called: Set[str] = set()
                for node in ast.walk(func_node):
                    if not isinstance(node, ast.Call):
                        continue
                    target = _call_target_name(node)
                    if not target:
                        continue
                    resolution = self.resolve(module_name, target)
                    called.add(resolution.qualified)
                graph[f"{module_name}.{func_name}"] = frozenset(called)
        return graph

    def callers_of(self, qualified: str) -> List[str]:
        """Qualified names of functions whose bodies call ``qualified``."""
        return sorted(
            caller
            for caller, callees in self.call_graph().items()
            if qualified in callees
        )


def _call_target_name(node: ast.Call) -> str:
    """Local spelling of a call target (``f`` or the root of ``m.f``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    return ""


__all__ = [
    "KIND_CLASS",
    "KIND_EXTERNAL",
    "KIND_FUNCTION",
    "KIND_UNKNOWN",
    "ModuleIndex",
    "ProjectContext",
    "Resolution",
]
