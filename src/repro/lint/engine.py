"""The lint engine: collect files, run rules, return findings.

:func:`lint_paths` is the single entry point the CLI and the tier-1
self-gate both call: it expands the given files/directories to Python
sources, parses each once into a shared :class:`FileContext`, runs
every registered per-file rule, then every project-level rule, and
returns the sorted findings. A file that fails to parse yields a
single ``parse-error`` finding instead of aborting the run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.callgraph import ProjectContext
from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import FileRule, ProjectRule, all_rules, rule_ids

#: Directories never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".mypy_cache", ".ruff_cache", "build",
     "dist", ".venv", "venv", ".eggs"}
)


def iter_python_files(paths: Iterable[str]) -> List[Tuple[Path, str]]:
    """``(absolute_path, display_path)`` for every ``.py`` under paths.

    Files are returned sorted by display path; duplicates (the same
    file reached through two arguments) are dropped.
    """
    seen = set()
    out: List[Tuple[Path, str]] = []
    for raw in paths:
        base = Path(raw)
        if base.is_dir():
            candidates = sorted(
                p
                for p in base.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        else:
            candidates = [base]
        for path in candidates:
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            out.append((resolved, str(path)))
    out.sort(key=lambda item: item[1])
    return out


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run every registered rule over ``paths``.

    Args:
        paths: files and/or directories to lint.
        select: when given, only run rules with these ids.

    Returns:
        All findings, sorted by (path, line, col, rule).

    Raises:
        ValueError: if ``select`` names a rule that is not registered
            (a typo would otherwise silently disable linting).
    """
    wanted = set(select) if select is not None else None
    if wanted is not None:
        unknown = wanted - set(rule_ids())
        if unknown:
            known = ", ".join(rule_ids())
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))} "
                f"(known rules: {known})"
            )
    rules = [
        r for r in all_rules() if wanted is None or r.id in wanted
    ]
    findings: List[Finding] = []
    contexts: List[FileContext] = []
    for path, display in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            ctx = FileContext.from_source(path, source, display)
        except (OSError, SyntaxError, ValueError) as exc:
            findings.append(
                Finding(
                    path=display,
                    line=getattr(exc, "lineno", 0) or 0,
                    col=0,
                    rule="parse-error",
                    severity=Severity.ERROR,
                    message=f"cannot lint file: {exc}",
                )
            )
            continue
        contexts.append(ctx)
        for rule in rules:
            if isinstance(rule, FileRule) and rule.applies_to(ctx):
                findings.extend(rule.check_file(ctx))
    project = ProjectContext.from_contexts(contexts)
    for rule in rules:
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(contexts, project))
    return sorted(findings)


def max_severity(findings: Iterable[Finding]) -> Optional[Severity]:
    """The worst severity present, or ``None`` for a clean run."""
    worst: Optional[Severity] = None
    for f in findings:
        if f.severity is Severity.ERROR:
            return Severity.ERROR
        worst = f.severity
    return worst


__all__ = ["iter_python_files", "lint_paths", "max_severity"]
