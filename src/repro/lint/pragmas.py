"""Inline suppression pragmas.

A finding can be silenced where an invariant is *deliberately* bent —
e.g. the tolerance helpers in :mod:`repro.units` are the one place
allowed to spell a float comparison — by putting a pragma comment on
the flagged line::

    if level_j == 0.0:  # repro-lint: disable=float-eq

``disable=all`` silences every rule on that line. A file-level pragma
(``# repro-lint: disable-file=<rule>``) on any line of the file
silences the rule for the whole file; it is meant for generated code
and test fixtures, not for day-to-day suppression.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterable, Set

_LINE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")
_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\- ]+)")


def _parse_rules(raw: str) -> FrozenSet[str]:
    return frozenset(r.strip() for r in raw.split(",") if r.strip())


class PragmaIndex:
    """Per-file index of suppression pragmas.

    Built once per linted file from its source lines; rules query
    :meth:`suppressed` for each candidate finding.
    """

    def __init__(self, lines: Iterable[str]):
        self._by_line: Dict[int, FrozenSet[str]] = {}
        self._file_wide: Set[str] = set()
        for lineno, text in enumerate(lines, start=1):
            m = _LINE_RE.search(text)
            if m:
                self._by_line[lineno] = _parse_rules(m.group(1))
            m = _FILE_RE.search(text)
            if m:
                self._file_wide.update(_parse_rules(m.group(1)))

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is disabled at ``line`` (1-based)."""
        if rule in self._file_wide or "all" in self._file_wide:
            return True
        rules = self._by_line.get(line)
        return rules is not None and (rule in rules or "all" in rules)

    def suppressed_span(self, rule: str, first: int, last: int) -> bool:
        """Whether ``rule`` is disabled anywhere in ``first..last``.

        Multi-line statements report their finding at the first line,
        but the natural place for the pragma comment is often the last
        physical line (after the closing paren) — both work: a pragma
        on *any* line of the flagged statement suppresses it.
        """
        if rule in self._file_wide or "all" in self._file_wide:
            return True
        if last < first:
            first, last = last, first
        return any(
            self.suppressed(rule, line) for line in range(first, last + 1)
        )


__all__ = ["PragmaIndex"]
