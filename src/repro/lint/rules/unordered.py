"""Rule R8 ``unordered-iteration`` — no set-order data in results.

The batch service's contract is byte-identical results at any worker
count and any ``PYTHONHASHSEED`` (DESIGN §13); PR 6's runtime
sanitizer (``repro sanitize``) enforces it dynamically. This rule is
the static half: it runs the intra-function dataflow analysis of
:mod:`repro.lint.dataflow` over every production file and flags each
place an evidently unordered collection (``set``/``frozenset``
display, constructor, comprehension or algebra) is iterated into an
order-sensitive sink — list building, ``+=`` float accumulation,
stream/JSONL emission, ``sum``/``list``/``tuple``/``join``
materialization, ``next(iter(...))`` first-element picks — without an
intervening ``sorted()``.

Counting loops (``n += 1``), membership tests and order-insensitive
consumers (``sorted``, ``min``, ``max``, ``len``, ``any``, ``all``,
rebuilding a ``set``) never trigger. Where set order is provably
harmless (e.g. the elements feed a commutative integer reduction),
suppress with ``# repro-lint: disable=unordered-iteration`` and say
why in the surrounding code.

Tests are exempt: fixtures iterate sets freely, and the parity suite
itself is the runtime check.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.dataflow import order_hazards
from repro.lint.registry import FileRule, register


@register
class UnorderedIterationRule(FileRule):
    """R8: unordered collections must be sorted before ordered sinks."""

    id = "unordered-iteration"
    description = (
        "no set/frozenset iteration into order-sensitive sinks "
        "without sorted() (deterministic results)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.in_tests

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for hazard in order_hazards(ctx.tree):
            node = hazard.node
            line = getattr(node, "lineno", 0)
            # For loop hazards the pragma span is the header (up to the
            # end of the iterable expression), not the whole body.
            span_node = node.iter if isinstance(node, ast.For) else node
            end_line = getattr(span_node, "end_lineno", None) or line
            if ctx.pragmas.suppressed_span(self.id, line, end_line):
                continue
            yield self.finding(
                ctx,
                line,
                getattr(hazard.node, "col_offset", 0),
                f"{hazard.detail}; iterate sorted(...) instead so the "
                f"result does not depend on hash order",
            )


__all__ = ["UnorderedIterationRule"]
