"""Rule R7 ``euclidean-call`` — distances go through the shared cache.

Every planner-facing distance in the pipeline must come from a
:class:`~repro.geometry.distcache.DistanceCache` (usually the
:class:`~repro.pipeline.context.PlanningContext`'s), so warm runs pay
one ``math.hypot`` per point pair instead of one per lookup — and so
all layers agree bit-exactly on every leg length. A scattered
``euclidean()`` call re-opens the door to the ad-hoc per-module
distance closures the pipeline refactor removed.

The rule flags calls to ``euclidean`` (bare name or attribute) in any
``repro`` module outside :mod:`repro.geometry` — where the primitive
and its cache live — and :mod:`repro.pipeline`, which owns the cache
instances. Point-based public APIs that legitimately measure one
segment (e.g. ``ChargerSpec.travel_time``) suppress with
``# repro-lint: disable=euclidean-call``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import FileRule, register
from repro.lint.visitor import RuleVisitor

#: Packages allowed to call the primitive directly.
_ALLOWED_PACKAGES = frozenset({"geometry", "pipeline"})


def _package_key(module_name: str) -> str:
    parts = module_name.split(".")
    return parts[1] if len(parts) > 1 else ""


class _Visitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "euclidean":
            self.report(
                node,
                "direct euclidean() call outside repro.geometry/"
                "repro.pipeline; route distances through a "
                "DistanceCache (e.g. PlanningContext.distance) so "
                "lookups are shared and memoized",
            )
        self.generic_visit(node)


@register
class EuclideanCallRule(FileRule):
    """R7: no raw ``euclidean()`` outside the geometry/pipeline layers."""

    id = "euclidean-call"
    description = (
        "distances outside repro.geometry/repro.pipeline go through "
        "a DistanceCache, not raw euclidean() calls"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module_name is None:
            return False
        if not ctx.module_name.startswith("repro"):
            return False
        return _package_key(ctx.module_name) not in _ALLOWED_PACKAGES

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(_Visitor(self, ctx).run())


__all__ = ["EuclideanCallRule"]
