"""Rule R1 ``unit-suffix`` — unit discipline on physical quantities.

Energy, power, time, distance, speed and data-rate all share the type
``float``; the repository keeps them apart by naming: a declared float
whose name says it is a physical quantity (``...capacity...``,
``...delay...``, ``...radius...``) must carry a unit token as one of
its ``_``-separated components (``capacity_j``, ``longest_delay_s``,
``charge_radius_m``). The canonical keyword and token tables live in
:mod:`repro.units` so code, docs and linter cannot drift apart.

The rule checks *declarations* — function parameters annotated
``float`` and ``float``-annotated attribute assignments — rather than
every expression, which keeps it precise enough to run as an error.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import FileRule, register
from repro.lint.visitor import RuleVisitor
from repro.units import QUANTITY_KEYWORDS, UNIT_TOKENS


def _is_float_annotation(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id == "float"
    if isinstance(node, ast.Constant):  # string annotation
        return node.value == "float"
    return False


def quantity_dimensions(name: str) -> List[str]:
    """Dimensions a name claims to denote, per the keyword table."""
    lowered = name.lower()
    return [
        dim
        for dim, keywords in sorted(QUANTITY_KEYWORDS.items())
        if any(k in lowered for k in keywords)
    ]


_ALL_TOKENS = frozenset().union(*UNIT_TOKENS.values())


def has_unit_token(name: str, dims: List[str]) -> bool:
    """Whether any name component is a unit token.

    Any dimension's token counts, not only the claimed dimension's:
    legitimate cross-dimension names exist (``one_to_one_capacity_w``
    is a *service capacity* measured in watts) and the linter cannot do
    dimensional analysis — it only enforces that a unit is stated.
    """
    components = set(name.lower().split("_"))
    return bool(components & _ALL_TOKENS)


def check_name(name: str) -> Optional[Tuple[List[str], str]]:
    """``(claimed_dims, expected_tokens)`` when the name violates R1."""
    dims = quantity_dimensions(name)
    if not dims or has_unit_token(name, dims):
        return None
    expected = ", ".join(
        sorted(tok for dim in dims for tok in UNIT_TOKENS[dim])
    )
    return dims, expected


class _Visitor(RuleVisitor):
    def _check(self, node: ast.AST, name: str, what: str) -> None:
        violation = check_name(name)
        if violation is None:
            return
        dims, expected = violation
        self.report(
            node,
            f"{what} {name!r} looks like a {'/'.join(dims)} quantity "
            f"but carries no unit token (expected a component like: "
            f"{expected})",
        )

    def _check_args(self, args: ast.arguments) -> None:
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _is_float_annotation(arg.annotation):
                self._check(arg, arg.arg, "parameter")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_args(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_args(node.args)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and _is_float_annotation(
            node.annotation
        ):
            self._check(node, node.target.id, "attribute")
        self.generic_visit(node)


@register
class UnitSuffixRule(FileRule):
    """R1: declared float quantities must carry a unit token."""

    id = "unit-suffix"
    description = (
        "float parameters/attributes denoting physical quantities "
        "must carry a unit token (_j/_w/_s/_m/...)"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(_Visitor(self, ctx).run())


__all__ = ["UnitSuffixRule", "check_name", "quantity_dimensions"]
