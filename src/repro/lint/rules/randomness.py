"""Rule R3 ``seeded-rng`` — no unseeded randomness outside tests.

Every experiment in the paper reproduction must be deterministic given
its seed: figures, benchmark campaigns and regression baselines all
depend on it. Global-state RNGs (`random.random()`, ``np.random.rand``
and friends) and ``np.random.default_rng()`` *without* a seed make a
run unrepeatable, so production code must thread an explicit seed or a
``numpy.random.Generator``.

Two more shapes hide the same unrepeatability one call away:
``np.random.default_rng(None)`` (the literal ``None`` means "entropy
from the OS", exactly like no argument), and a *public* function whose
``seed`` parameter defaults to ``None`` — every caller that omits the
argument silently gets a different run each time. Both are flagged;
public seed parameters should default to a constant (``seed: int = 0``)
so the bare call is the reproducible one.

Allowed: ``np.random.default_rng(seed)``, ``random.Random(seed)``,
constructing ``Generator``/``SeedSequence``/``PCG64`` objects,
private helpers (a leading-underscore name is not an API surface),
and anything at all under ``tests/``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import FileRule, register
from repro.lint.visitor import RuleVisitor

#: numpy.random attributes that are fine to touch: seeded construction.
_NUMPY_ALLOWED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "BitGenerator"}
)


class _Visitor(RuleVisitor):
    def __init__(self, rule, ctx):
        super().__init__(rule, ctx)
        #: Local aliases of the stdlib ``random`` module.
        self.random_aliases: Set[str] = set()
        #: Local aliases of the ``numpy`` module.
        self.numpy_aliases: Set[str] = set()
        #: Local aliases of the ``numpy.random`` submodule.
        self.numpy_random_aliases: Set[str] = set()
        #: Names imported *from* the stdlib ``random`` module.
        self.from_random: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name in ("numpy", "np"):
                self.numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname:
                    self.numpy_random_aliases.add(alias.asname)
                else:
                    self.numpy_aliases.add("numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    self.from_random.add(alias.asname or alias.name)
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.numpy_random_aliases.add(alias.asname or "random")
        self.generic_visit(node)

    def _numpy_random_attr(self, func: ast.expr) -> str:
        """The ``X`` of ``np.random.X`` / ``npr.X``, or ``""``."""
        if not isinstance(func, ast.Attribute):
            return ""
        value = func.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in self.numpy_aliases
        ):
            return func.attr
        if (
            isinstance(value, ast.Name)
            and value.id in self.numpy_random_aliases
        ):
            return func.attr
        return ""

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # numpy: np.random.<attr>(...)
        attr = self._numpy_random_attr(func)
        if attr:
            if attr not in _NUMPY_ALLOWED:
                self.report(
                    node,
                    f"np.random.{attr}() uses numpy's global RNG state; "
                    f"thread a seeded np.random.default_rng(seed) "
                    f"Generator instead",
                )
            elif attr == "default_rng" and not node.args and not node.keywords:
                self.report(
                    node,
                    "np.random.default_rng() without a seed is "
                    "unrepeatable; pass an explicit seed",
                )
            elif attr == "default_rng" and _first_arg_is_none(node):
                self.report(
                    node,
                    "np.random.default_rng(None) seeds from OS entropy, "
                    "exactly like no argument; pass an explicit seed",
                )
        # stdlib: random.<attr>(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.random_aliases
        ):
            if func.attr == "Random":
                if not node.args and not node.keywords:
                    self.report(
                        node,
                        "random.Random() without a seed is unrepeatable; "
                        "pass an explicit seed",
                    )
            else:
                self.report(
                    node,
                    f"random.{func.attr}() uses the global RNG state; "
                    f"use a seeded random.Random(seed) or numpy "
                    f"Generator instead",
                )
        # stdlib: from random import uniform; uniform(...)
        if isinstance(func, ast.Name) and func.id in self.from_random:
            self.report(
                node,
                f"{func.id}() (imported from random) uses the global "
                f"RNG state; use a seeded random.Random(seed) instead",
            )
        self.generic_visit(node)

    def _check_seed_default(self, node) -> None:
        """Flag public functions whose ``seed`` defaults to ``None``."""
        if node.name.startswith("_"):
            self.generic_visit(node)
            return
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        # Defaults align with the tail of the positional parameters.
        offset = len(positional) - len(args.defaults)
        pairs = list(zip(positional[offset:], args.defaults))
        pairs += [
            (arg, default)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None
        ]
        for arg, default in pairs:
            if (
                arg.arg == "seed"
                and isinstance(default, ast.Constant)
                and default.value is None
            ):
                self.report(
                    arg,
                    f"public function '{node.name}' defaults seed to "
                    f"None, so the bare call is unrepeatable; default "
                    f"to a constant (e.g. seed: int = 0) instead",
                )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_seed_default(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_seed_default(node)


def _first_arg_is_none(node: ast.Call) -> bool:
    """Whether the call's first argument is the literal ``None``."""
    candidate: ast.expr
    if node.args:
        candidate = node.args[0]
    elif node.keywords and node.keywords[0].arg == "seed":
        candidate = node.keywords[0].value
    else:
        return False
    return isinstance(candidate, ast.Constant) and candidate.value is None


@register
class SeededRngRule(FileRule):
    """R3: production randomness must be explicitly seeded."""

    id = "seeded-rng"
    description = (
        "no global-state or unseeded RNG outside tests/ "
        "(deterministic experiments)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.in_tests

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(_Visitor(self, ctx).run())


__all__ = ["SeededRngRule"]
