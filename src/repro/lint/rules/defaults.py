"""Rule R4 ``mutable-default`` — no mutable default arguments.

A ``def f(x, acc=[])`` default is evaluated once at definition time
and shared across calls; in a scheduler that reuses planner objects
across requests this turns into cross-request state leakage. The rule
flags list/dict/set literals, comprehensions and bare
``list()``/``dict()``/``set()``/``bytearray()`` calls used as defaults
(use ``None`` and materialise inside the body instead).

Class-instance defaults — ``def f(field: Field = Field())`` — are the
same trap in disguise: every call shares one instance, and unless the
class is genuinely immutable any mutation leaks across calls (the
``WRSN(field=Field())`` default shipped exactly this bug). The rule
flags zero-and-keyword-argument calls to CamelCase names used as
defaults; genuinely frozen sentinels can suppress with a pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import FileRule, register
from repro.lint.visitor import RuleVisitor

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORIES
    )


def _is_instance_default(node: ast.expr) -> bool:
    """A constructor call used as a default: ``f(field=Field())``.

    CamelCase heuristic: a call to a capitalised bare name (or a
    capitalised attribute, e.g. ``module.Field()``) is treated as a
    class instantiation. Factories like ``frozenset()`` stay with the
    mutable-factory list above.
    """
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    else:
        return False
    return name[:1].isupper()


class _Visitor(RuleVisitor):
    def _check_args(self, args: ast.arguments) -> None:
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            if _is_mutable_default(default):
                self.report(
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None and build the container in the body",
                )
            elif _is_instance_default(default):
                self.report(
                    default,
                    "class-instance default is evaluated once and shared "
                    "across calls; default to None and construct the "
                    "instance in the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_args(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_args(node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_args(node.args)
        self.generic_visit(node)


@register
class MutableDefaultRule(FileRule):
    """R4: list/dict/set defaults are evaluated once and shared."""

    id = "mutable-default"
    description = "no mutable or class-instance default arguments"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(_Visitor(self, ctx).run())


__all__ = ["MutableDefaultRule"]
