"""Rule R2 ``float-eq`` — no exact equality on physical quantities.

Energy and time values accumulate rounding error through travel-leg
sums and repeated recharge/deplete cycles, so ``x == 0.0`` silently
flips from true to false across refactors. The rule flags ``==`` /
``!=`` comparisons where either operand is a float literal or an
identifier that carries a unit token (``level_j``, ``finish_s``, ...),
and points at the explicit tolerance helpers in :mod:`repro.units`
(:func:`~repro.units.approx_eq`, :func:`~repro.units.approx_zero`).

Integer comparisons (``count == 0``) are untouched: exactness is the
point there.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import FileRule, register
from repro.lint.visitor import RuleVisitor
from repro.units import UNIT_TOKENS

_ALL_TOKENS = frozenset().union(*UNIT_TOKENS.values())


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_unit_name(node: ast.expr) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    components = name.lower().split("_")
    # A bare single-component name ("j", "m", "s") is a loop variable,
    # not a quantity; only compound names carry unit suffixes.
    if len(components) < 2:
        return False
    return bool(set(components) & _ALL_TOKENS)


def _is_physical(node: ast.expr) -> bool:
    return _is_float_literal(node) or _is_unit_name(node)


class _Visitor(RuleVisitor):
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_physical(left) or _is_physical(right):
                eq = "==" if isinstance(op, ast.Eq) else "!="
                self.report(
                    node,
                    f"exact {eq} on a float quantity; use "
                    f"repro.units.approx_eq/approx_zero so the "
                    f"tolerance is explicit",
                )
                break
        self.generic_visit(node)


@register
class FloatEqRule(FileRule):
    """R2: exact ==/!= on float quantities is forbidden."""

    id = "float-eq"
    description = (
        "no exact ==/!= on float quantities; use repro.units "
        "tolerance helpers"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(_Visitor(self, ctx).run())


__all__ = ["FloatEqRule"]
