"""Rule R9 ``wall-clock`` — no clock or environment reads below sim.

The paper's algorithms are pure functions of ``(network, requests,
K)``: two replans of the same job must agree byte-for-byte whether
they run today or next week, on a laptop or in a pool worker with a
different environment. A ``time.time()`` (or ``datetime.now()``)
creeping into a planner turns schedules into functions of the clock;
an ``os.environ`` read makes them functions of the shell. Both are
invisible to the parity suite until they happen to disagree, so the
deterministic layers ban them statically.

Scope: every package at or below ``pipeline`` in the import-layer map
(:data:`repro.lint.rules.layering.LAYERS`) — geometry through
pipeline, the layers planning results flow through. The service,
simulation, bench and CLI layers legitimately read clocks (timeouts,
run timing, timestamps in reports) and env knobs
(``REPRO_BENCH_*``), and stay out of scope.

``time.perf_counter()``/``time.monotonic()`` are *also* flagged in
scope: even "diagnostic" timers below the pipeline invite
time-dependent branching (adaptive cutoffs, early exits) that the
parity harness would only catch probabilistically. Measure in the
bench layer instead, or suppress with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import FileRule, register
from repro.lint.rules.layering import LAYERS
from repro.lint.visitor import RuleVisitor

#: Highest layer rank the rule applies to (the pipeline layer).
DETERMINISTIC_MAX_RANK = LAYERS["pipeline"]

#: ``time.<attr>`` calls that read a clock.
_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "localtime",
        "gmtime",
        "ctime",
        "asctime",
        "process_time",
        "process_time_ns",
    }
)

#: ``datetime.datetime.<attr>`` / ``datetime.date.<attr>`` "now" reads.
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: ``os.<attr>`` environment reads.
_OS_ENV_ATTRS = frozenset({"getenv", "environ", "getenvb"})


def _package_key(module_name: str) -> str:
    parts = module_name.split(".")
    return parts[1] if len(parts) > 1 else ""


class _Visitor(RuleVisitor):
    def __init__(self, rule, ctx):
        super().__init__(rule, ctx)
        #: Local aliases of the stdlib ``time`` module.
        self.time_aliases: Set[str] = set()
        #: Local aliases of ``os``.
        self.os_aliases: Set[str] = set()
        #: Local aliases of the ``datetime`` *module*.
        self.datetime_module_aliases: Set[str] = set()
        #: Local aliases of the ``datetime.datetime``/``date`` classes.
        self.datetime_class_aliases: Set[str] = set()
        #: Clock functions imported directly (``from time import time``).
        self.from_time: Set[str] = set()
        #: Env readers imported directly (``from os import getenv``).
        self.from_os: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "os":
                self.os_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_module_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_ATTRS:
                    self.from_time.add(alias.asname or alias.name)
        elif node.module == "os":
            for alias in node.names:
                if alias.name in _OS_ENV_ATTRS:
                    self.from_os.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.datetime_class_aliases.add(
                        alias.asname or alias.name
                    )
        self.generic_visit(node)

    def _flag(self, node: ast.AST, what: str, why: str) -> None:
        self.report(
            node,
            f"{what} {why}; deterministic layers (geometry..pipeline) "
            f"must be pure functions of their inputs — measure or "
            f"configure in the sim/bench/cli layers instead",
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if (
                isinstance(value, ast.Name)
                and value.id in self.time_aliases
                and func.attr in _TIME_ATTRS
            ):
                self._flag(node, f"time.{func.attr}()", "reads a clock")
            elif (
                isinstance(value, ast.Name)
                and value.id in self.os_aliases
                and func.attr == "getenv"
            ):
                self._flag(
                    node, "os.getenv()", "reads the process environment"
                )
            elif func.attr in _DATETIME_ATTRS and self._is_datetime_class(
                value
            ):
                self._flag(
                    node,
                    f"datetime {func.attr}()",
                    "reads the wall clock",
                )
        elif isinstance(func, ast.Name):
            if func.id in self.from_time:
                self._flag(
                    node,
                    f"{func.id}() (imported from time)",
                    "reads a clock",
                )
            elif func.id in self.from_os:
                self._flag(
                    node,
                    f"{func.id}() (imported from os)",
                    "reads the process environment",
                )
        self.generic_visit(node)

    def _is_datetime_class(self, value: ast.expr) -> bool:
        """``datetime.now()`` via class alias or ``datetime.datetime``."""
        if (
            isinstance(value, ast.Name)
            and value.id in self.datetime_class_aliases
        ):
            return True
        return (
            isinstance(value, ast.Attribute)
            and value.attr in ("datetime", "date")
            and isinstance(value.value, ast.Name)
            and value.value.id in self.datetime_module_aliases
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # os.environ reads (subscripts, .get(...), iteration) all go
        # through the bare attribute access.
        if (
            node.attr == "environ"
            and isinstance(node.value, ast.Name)
            and node.value.id in self.os_aliases
        ):
            self._flag(node, "os.environ", "reads the process environment")
        self.generic_visit(node)


@register
class WallClockRule(FileRule):
    """R9: no clock or environment reads at or below the pipeline layer."""

    id = "wall-clock"
    description = (
        "no time/datetime/os.environ reads in deterministic layers "
        "(geometry..pipeline)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module_name is None or ctx.in_tests:
            return False
        if not ctx.module_name.startswith("repro"):
            return False
        rank = LAYERS.get(_package_key(ctx.module_name))
        return rank is not None and rank <= DETERMINISTIC_MAX_RANK

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(_Visitor(self, ctx).run())


__all__ = ["DETERMINISTIC_MAX_RANK", "WallClockRule"]
