"""Project-specific lint rules.

Importing this package registers every rule with
:mod:`repro.lint.registry`:

* ``unit-suffix`` (R1) — physical-quantity names carry unit tokens.
* ``float-eq`` (R2) — no exact ``==``/``!=`` on physical quantities.
* ``seeded-rng`` (R3) — no unseeded global randomness outside tests.
* ``mutable-default`` (R4) — no mutable or class-instance default
  arguments.
* ``import-layer`` (R5) — the package layering contract.
* ``api-drift`` (R6) — ``docs/API.md`` matches the public API.
* ``euclidean-call`` (R7) — distances go through the shared cache.
* ``unordered-iteration`` (R8) — no set/frozenset iteration into
  order-sensitive sinks without ``sorted()``.
* ``wall-clock`` (R9) — no clock or environment reads in the
  deterministic layers (geometry..pipeline).
* ``pool-payload`` (R10) — callables submitted to
  ``serve.pool.run_tasks`` are module-level importable.
* ``cache-mutation`` (R11) — ``PlanningContext`` memo fields are
  written only inside ``repro.pipeline``.

R1–R5 and R7–R9/R11 are per-file AST checks; R6 and R10 are
project-level rules that see the whole linted file set (and, for R10,
the cross-module import index of :mod:`repro.lint.callgraph`).
"""

from repro.lint.rules import api_drift, cachemutation, defaults, distance
from repro.lint.rules import floateq, layering, poolpayload, randomness
from repro.lint.rules import units, unordered, wallclock

__all__ = [
    "api_drift",
    "cachemutation",
    "defaults",
    "distance",
    "floateq",
    "layering",
    "poolpayload",
    "randomness",
    "units",
    "unordered",
    "wallclock",
]
