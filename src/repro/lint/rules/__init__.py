"""Project-specific lint rules.

Importing this package registers every rule with
:mod:`repro.lint.registry`:

* ``unit-suffix`` (R1) — physical-quantity names carry unit tokens.
* ``float-eq`` (R2) — no exact ``==``/``!=`` on physical quantities.
* ``seeded-rng`` (R3) — no unseeded global randomness outside tests.
* ``mutable-default`` (R4) — no mutable or class-instance default
  arguments.
* ``import-layer`` (R5) — the package layering contract.
* ``api-drift`` (R6) — ``docs/API.md`` matches the public API.
* ``euclidean-call`` (R7) — distances go through the shared cache.
"""

from repro.lint.rules import api_drift, defaults, distance, floateq
from repro.lint.rules import layering, randomness, units

__all__ = [
    "api_drift",
    "defaults",
    "distance",
    "floateq",
    "layering",
    "randomness",
    "units",
]
