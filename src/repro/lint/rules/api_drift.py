"""Rule R6 ``api-drift`` — ``docs/API.md`` matches the public API.

The generated API reference is the contract reviewers read; when
``__all__`` exports, signatures or docstrings change without
regenerating it, downstream users work from stale documentation. The
rule reuses the traversal in ``tools/gen_api_docs.py`` (its
``drift()`` helper — the same code the ``--check`` CLI mode and CI
run) rather than duplicating the walk, so "what counts as public" has
exactly one definition.

The rule only fires when the linted tree sits inside a repository
checkout (it walks up from the linted files looking for
``tools/gen_api_docs.py``); linting a loose fixture directory skips
it.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.lint.callgraph import ProjectContext
from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register


def _find_repo_root(contexts: Sequence[FileContext]) -> Optional[Path]:
    for ctx in contexts:
        for parent in [ctx.path, *ctx.path.parents]:
            if (parent / "tools" / "gen_api_docs.py").is_file():
                return parent
    return None


def _load_drift(root: Path):
    """The ``drift`` function of ``tools/gen_api_docs.py``."""
    script = root / "tools" / "gen_api_docs.py"
    spec = importlib.util.spec_from_file_location("_gen_api_docs", script)
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        return None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return getattr(module, "drift", None)


@register
class ApiDriftRule(ProjectRule):
    """R6: the generated API reference must be regenerated with code."""

    id = "api-drift"
    description = (
        "docs/API.md must match the public API "
        "(tools/gen_api_docs.py --check)"
    )

    def check_project(
        self,
        contexts: Sequence[FileContext],
        project: ProjectContext,
    ) -> Iterator[Finding]:
        root = _find_repo_root(contexts)
        if root is None:
            return
        try:
            drift = _load_drift(root)
        except Exception as exc:
            yield Finding(
                path=str(root / "tools" / "gen_api_docs.py"),
                line=1,
                col=0,
                rule=self.id,
                severity=self.severity,
                message=f"cannot run the API-drift check: {exc}",
            )
            return
        if drift is None:
            return
        problem = drift(root / "docs" / "API.md")
        if problem is not None:
            yield Finding(
                path=str(root / "docs" / "API.md"),
                line=1,
                col=0,
                rule=self.id,
                severity=self.severity,
                message=problem,
            )


__all__ = ["ApiDriftRule"]
