"""Rule R5 ``import-layer`` — the package layering contract.

The architecture is a strict DAG of layers; an import may only point
*down* the stack (or stay inside its own package)::

    layer 0   geometry, units
    layer 1   energy, lint
    layer 2   network
    layer 3   graphs, tours
    layer 4   core
    layer 5   baselines
    layer 6   pipeline
    layer 7   sim, io
    layer 8   serve
    layer 9   bench, viz
    layer 10  cli

(This refines ISSUE/DESIGN's ``geometry → graphs/energy → core/tours →
baselines/sim → bench/cli/viz`` sketch with the two substrate layers —
``network`` sits between ``energy`` and ``graphs`` because charging
graphs are built over topologies, which are built over radios.)

Same-layer packages may not import each other: ``graphs`` and
``tours`` are independent by design, as are ``sim`` and ``io``.
Violations are architecture errors — they are what makes hot-path
packages importable (and compilable/vectorisable) without dragging in
the simulator or CLI.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import FileRule, register

#: Package (or top-level module) -> layer rank. Lower is more basic.
LAYERS: Dict[str, int] = {
    "geometry": 0,
    "units": 0,
    "energy": 1,
    "lint": 1,
    "network": 2,
    "graphs": 3,
    "tours": 3,
    "core": 4,
    "baselines": 5,
    "pipeline": 6,
    "io": 7,
    "sim": 7,
    "serve": 8,
    "eval": 9,
    "bench": 9,
    "viz": 9,
    "cli": 10,
}

#: Modules of the root package exempt from the contract: the package
#: facade and the entry point legitimately reach across all layers.
_EXEMPT_SOURCES = frozenset({"", "__init__", "__main__"})


def _package_key(module_name: str) -> str:
    """``repro.energy.battery`` -> ``energy``; ``repro`` -> ``""``."""
    parts = module_name.split(".")
    return parts[1] if len(parts) > 1 else ""


def _resolve_relative(ctx_module: str, level: int,
                      module: Optional[str]) -> Optional[str]:
    """Absolute dotted target of a relative import, or ``None``.

    ``ctx_module`` keeps its ``__init__`` component, so one level
    always strips exactly the module part: ``from . import x`` in
    ``repro.energy.battery`` and in ``repro.energy.__init__`` both
    resolve against ``repro.energy``.
    """
    parts = ctx_module.split(".")
    if level >= len(parts):
        return None
    prefix = ".".join(parts[:-level])
    if module:
        return f"{prefix}.{module}" if prefix else module
    return prefix or None


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: "ImportLayerRule", ctx: FileContext):
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Finding] = []
        self.source_key = _package_key(ctx.module_name or "")

    def _check_target(self, node: ast.AST, target: str) -> None:
        if target != "repro" and not target.startswith("repro."):
            return
        target_key = _package_key(target)
        if target_key == self.source_key:
            return
        line = getattr(node, "lineno", 0)
        if self.ctx.pragmas.suppressed(self.rule.id, line):
            return
        src_rank = LAYERS.get(self.source_key)
        if src_rank is None:
            self.findings.append(self.rule.finding(
                self.ctx, line, getattr(node, "col_offset", 0),
                f"package {self.source_key!r} is not in the layer map "
                f"(repro.lint.rules.layering.LAYERS); add it at the "
                f"right rank",
            ))
            return
        dst_rank = LAYERS.get(target_key)
        if dst_rank is None:
            self.findings.append(self.rule.finding(
                self.ctx, line, getattr(node, "col_offset", 0),
                f"import of {target!r}: package {target_key or 'repro'!r} "
                f"is not in the layer map (repro.lint.rules.layering."
                f"LAYERS); add it at the right rank",
            ))
            return
        if dst_rank >= src_rank:
            self.findings.append(self.rule.finding(
                self.ctx, line, getattr(node, "col_offset", 0),
                f"layer violation: {self.source_key!r} (layer "
                f"{src_rank}) may not import {target_key!r} (layer "
                f"{dst_rank}); imports must point strictly down the "
                f"stack",
            ))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_target(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            target = _resolve_relative(
                self.ctx.module_name or "", node.level, node.module
            )
            if target is not None:
                self._check_target(node, target)
            return
        if node.module is not None:
            self._check_target(node, node.module)


@register
class ImportLayerRule(FileRule):
    """R5: imports must point strictly down the layer stack."""

    id = "import-layer"
    description = (
        "enforce the package layering contract "
        "(geometry/units -> ... -> cli)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module_name is None:
            return False
        if not ctx.module_name.startswith("repro"):
            return False
        return _package_key(ctx.module_name) not in _EXEMPT_SOURCES

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        visitor = _Visitor(self, ctx)
        visitor.visit(ctx.tree)
        return iter(visitor.findings)


__all__ = ["ImportLayerRule", "LAYERS"]
