"""Rule R10 ``pool-payload`` — only module-level callables into the pool.

:func:`repro.serve.pool.run_tasks` and the persistent
:class:`repro.serve.health.SupervisedPool` pickle the task function
into worker processes. Lambdas, closures and bound methods are either
unpicklable outright (spawn start methods) or — worse, under fork —
*silently* picklable today and broken the day the start method or the
enclosing scope changes. The pool docstrings state the contract
("a picklable module-level callable"); this rule enforces it at every
call site, project-wide:

* a ``lambda`` as the ``fn`` argument is flagged;
* a name defined by a *nested* ``def`` (a closure) is flagged;
* ``self.method`` / ``obj.method`` (a bound method dragging its whole
  instance through the pickle) is flagged — attribute access on an
  imported *module* (``workers.execute_plan_job``) stays fine;
* a bare name is resolved through the project import index
  (:class:`~repro.lint.callgraph.ProjectContext`): a module-level
  ``def`` anywhere in the linted project passes, as do names from
  un-linted (external) modules, which we cannot see into.

The rule keys on the *names* ``run_tasks`` and ``SupervisedPool``
(bare or attribute call, so aliased imports are still covered); both
take ``fn`` as the first positional or as a keyword. A false hit on
an unrelated function of the same name can be pragma'd away.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Set

from repro.lint.callgraph import (
    KIND_CLASS,
    ProjectContext,
)
from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register
from repro.lint.visitor import RuleVisitor

#: The pool entry point's name; bare calls and ``mod.run_tasks`` both count.
POOL_ENTRY = "run_tasks"

#: The persistent pool's constructor; same ``fn``-first contract.
POOL_CLASS = "SupervisedPool"


def _payload_expr(node: ast.Call):
    """The ``fn`` argument of a pool call, or ``None``."""
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg == "fn":
            return kw.value
    return None


class _Visitor(RuleVisitor):
    """Per-file scan, with the shared project index for name lookup."""

    def __init__(self, rule, ctx: FileContext, project: ProjectContext):
        super().__init__(rule, ctx)
        self.project = project
        #: Names bound by ``def`` inside an enclosing function — the
        #: closures. One set per nested function scope.
        self._local_defs: List[Set[str]] = []
        #: Names of imported modules (``import x`` / ``from p import m``
        #: where ``m`` is itself an indexed or unknown *module*).
        index = project.module(ctx.module_name or "")
        self._imports = dict(index.imports) if index is not None else {}

    # -- scope tracking -------------------------------------------------

    def _visit_function(self, node) -> None:
        if self._local_defs:
            self._local_defs[-1].add(node.name)
        self._local_defs.append(set())
        self.generic_visit(node)
        self._local_defs.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- the check ------------------------------------------------------

    def _is_module_attr(self, value: ast.expr) -> bool:
        """``value`` names a module (so ``value.f`` is importable)."""
        if not isinstance(value, ast.Name):
            return False
        origin = self._imports.get(value.id)
        if origin is None:
            return False
        # ``import numpy`` binds a bare module name; ``from repro.serve
        # import workers`` binds ``repro.serve.workers``. Either way the
        # origin must be a module, not a function/class: it is one when
        # the project indexes it as such or cannot see it at all.
        if self.project.module(origin) is not None:
            return True
        if "." not in origin:
            return True
        parent_module, leaf = origin.rsplit(".", 1)
        parent = self.project.module(parent_module)
        if parent is None:
            # Entirely external (e.g. ``os.path``): assume a module.
            return True
        return leaf not in parent.functions and leaf not in parent.classes

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        callee = None
        for pool_name in (POOL_ENTRY, POOL_CLASS):
            if (isinstance(func, ast.Name) and func.id == pool_name) or (
                isinstance(func, ast.Attribute) and func.attr == pool_name
            ):
                callee = pool_name
                break
        if callee is not None:
            payload = _payload_expr(node)
            if payload is not None:
                self._check_payload(payload, callee)
        self.generic_visit(node)

    def _check_payload(self, payload: ast.expr, callee: str) -> None:
        if isinstance(payload, ast.Lambda):
            self.report(
                payload,
                f"lambda passed to {callee} cannot be pickled into "
                f"pool workers; define a module-level function instead",
            )
            return
        if isinstance(payload, ast.Attribute):
            if not self._is_module_attr(payload.value):
                self.report(
                    payload,
                    f"bound method passed to {callee} drags its whole "
                    f"instance through the worker pickle (or fails under "
                    f"spawn); pass a module-level function and put the "
                    f"state in the payload",
                )
            return
        if not isinstance(payload, ast.Name):
            # Calls, subscripts, conditional expressions: too dynamic to
            # prove either way; the runtime sanitizer is the backstop.
            return
        name = payload.id
        if any(name in scope for scope in self._local_defs):
            self.report(
                payload,
                f"'{name}' is a nested def (a closure); {callee} "
                f"workers re-import the task function, so it must live "
                f"at module level",
            )
            return
        resolution = self.project.resolve(self.ctx.module_name or "", name)
        if resolution.kind == KIND_CLASS:
            # A class is importable and picklable by qualified name;
            # instances constructed per payload are fine.
            return
        # KIND_FUNCTION: a module-level def somewhere in the project.
        # KIND_EXTERNAL / KIND_UNKNOWN: cannot disprove, stay silent.


@register
class PoolPayloadRule(ProjectRule):
    """R10: ``run_tasks`` callables must be module-level importable."""

    id = "pool-payload"
    description = (
        "callables submitted to serve.pool.run_tasks or "
        "serve.health.SupervisedPool must be module-level "
        "(no lambdas/closures/bound methods)"
    )

    def check_project(
        self,
        contexts: Sequence[FileContext],
        project: ProjectContext,
    ) -> Iterator[Finding]:
        for ctx in contexts:
            if ctx.in_tests:
                continue
            yield from _Visitor(self, ctx, project).run()


__all__ = ["POOL_CLASS", "POOL_ENTRY", "PoolPayloadRule"]
