"""Rule R11 ``cache-mutation`` — ``PlanningContext`` memos are private.

The batch service shares one :class:`repro.pipeline.PlanningContext`
per network across jobs *and across pool workers* (DESIGN §12–13).
Its memo dictionaries are written only by its own accessor methods,
which makes the sharing story auditable: a memo is filled exactly
once, from inputs alone, so a cache hit and a cache miss produce the
same bytes. Code elsewhere that pokes a memo field directly —
pre-seeding ``_charge_times``, clearing ``_mis`` "to save memory",
fudging ``memo_hits`` in a report — breaks that audit: the same job
then plans differently depending on which worker (with which poked
cache) it lands on, which is exactly the class of bug ``repro
sanitize`` exists to catch at runtime.

The rule flags writes (assignment, augmented assignment, ``del``,
subscript stores, and mutating method calls such as ``.clear()`` /
``.update()`` / ``.pop()``) to any attribute named like a
``PlanningContext`` memo field, in every ``repro`` module outside the
``pipeline`` package. The field names are underscore-private and
distinctive, so matching by name is precise in practice; a genuine
collision can be suppressed with
``# repro-lint: disable=cache-mutation`` plus a comment saying what
the attribute really is.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import FileRule, register
from repro.lint.visitor import RuleVisitor

#: The memo/counter attributes of ``repro.pipeline.PlanningContext``.
MEMO_FIELDS = frozenset(
    {
        "_charge_times",
        "_charging_graph",
        "_grid_index",
        "_coverage",
        "_mis",
        "_stop_groups",
        "_aux",
        "_core",
        "_minmax",
        "_codecs",
        "_dense_matrices",
        "memo_hits",
        "memo_misses",
        "invalidations",
    }
)

#: Method calls that mutate a dict/graph memo in place.
MUTATING_METHODS = frozenset(
    {
        "clear",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "add_node",
        "add_edge",
        "add_nodes_from",
        "add_edges_from",
        "remove_node",
        "remove_edge",
    }
)


def _memo_attr(node: ast.expr):
    """The :class:`ast.Attribute` if ``node`` targets a memo field."""
    if isinstance(node, ast.Attribute) and node.attr in MEMO_FIELDS:
        return node
    if isinstance(node, ast.Subscript):
        return _memo_attr(node.value)
    return None


class _Visitor(RuleVisitor):
    def _flag(self, attr: ast.Attribute, how: str) -> None:
        self.report(
            attr,
            f"{how} PlanningContext memo field '.{attr.attr}' outside "
            f"repro.pipeline; memos are filled only by the context's "
            f"own accessors so cached and fresh plans stay "
            f"byte-identical across pool workers",
        )

    def _check_targets(self, targets, how: str) -> None:
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                self._check_targets(target.elts, how)
                continue
            attr = _memo_attr(target)
            if attr is not None:
                self._flag(attr, how)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_targets(node.targets, "assignment to")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_targets([node.target], "assignment to")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_targets([node.target], "augmented assignment to")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._check_targets(node.targets, "deletion of")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
        ):
            attr = _memo_attr(func.value)
            if attr is not None:
                self._flag(attr, f".{func.attr}() call mutating")
        self.generic_visit(node)


@register
class CacheMutationRule(FileRule):
    """R11: only ``repro.pipeline`` writes ``PlanningContext`` memos."""

    id = "cache-mutation"
    description = (
        "PlanningContext memo fields are written only inside "
        "repro.pipeline (shared-cache integrity)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module_name is None or ctx.in_tests:
            return False
        if not ctx.module_name.startswith("repro"):
            return False
        return not ctx.module_name.startswith("repro.pipeline")

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(_Visitor(self, ctx).run())


__all__ = ["MEMO_FIELDS", "MUTATING_METHODS", "CacheMutationRule"]
