"""Rule base classes and the rule registry.

A rule is a class with a stable ``id``, a default :class:`Severity`,
and either a per-file check (:class:`FileRule`) or a whole-project
check (:class:`ProjectRule`). Decorating the class with
:func:`register` adds it to the global registry the engine runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Sequence, Type

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.callgraph import ProjectContext


class Rule:
    """Common interface of all lint rules."""

    #: Stable rule id used in reports and pragmas (kebab-case).
    id: str = ""
    #: Default severity of this rule's findings.
    severity: Severity = Severity.ERROR
    #: One-line description shown by ``repro lint --list-rules``.
    description: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether the rule should run on this file at all."""
        return True

    def finding(
        self, ctx: FileContext, line: int, col: int, message: str
    ) -> Finding:
        """Construct a finding for this rule at a source location."""
        return Finding(
            path=ctx.display_path,
            line=line,
            col=col,
            rule=self.id,
            severity=self.severity,
            message=message,
        )


class FileRule(Rule):
    """A rule checked one file at a time."""

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule needing a view of the whole linted file set.

    Besides the raw file contexts, project rules receive the run's
    shared :class:`~repro.lint.callgraph.ProjectContext` — the
    cross-module definition/import index the engine builds once.
    """

    def check_project(
        self,
        contexts: Sequence[FileContext],
        project: "ProjectContext",
    ) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, id-sorted."""
    # Importing the rules package populates the registry on first use.
    import repro.lint.rules  # noqa: F401  (side-effect import)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    """Ids of all registered rules."""
    import repro.lint.rules  # noqa: F401  (side-effect import)

    return sorted(_REGISTRY)


__all__ = [
    "FileRule",
    "ProjectRule",
    "Rule",
    "all_rules",
    "register",
    "rule_ids",
]
