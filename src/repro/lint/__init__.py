"""Project-specific static analysis (``repro lint``).

The paper's correctness rests on invariants the type system cannot
express — Definition 1's no-simultaneous-charging constraint, the
J/W/s/m unit discipline of :mod:`repro.units`, and deterministic
seeded experiments. This package checks the *statically visible*
consequences of those invariants at review time, before
:mod:`repro.core.validation` ever sees a schedule at runtime:

* an AST visitor framework (:mod:`repro.lint.visitor`) plus a rule
  registry (:mod:`repro.lint.registry`) and a
  :class:`~repro.lint.findings.Finding` record with ``file:line``
  spans and severities;
* eleven project rules (:mod:`repro.lint.rules`): unit-suffix
  discipline, no exact float equality, seeded randomness, no mutable
  defaults, the import-layering contract, API-doc drift, and the
  determinism family — unordered iteration over sets (dataflow-aware,
  :mod:`repro.lint.dataflow`), wall-clock/environment reads in
  deterministic layers, pool-payload portability (call-graph-aware,
  :mod:`repro.lint.callgraph`), and cross-process cache mutation;
* inline suppression via ``# repro-lint: disable=<rule>``
  (:mod:`repro.lint.pragmas`).

The static rules are backstopped at runtime by ``repro sanitize``
(:mod:`repro.serve.sanitize`), which replans a seeded job corpus under
``PYTHONHASHSEED`` and worker-count perturbation and byte-compares the
schedules.

Run it as ``repro lint [paths...]`` (``--format=json`` for machines)
or through :func:`lint_paths`; ``tests/test_lint_self.py`` gates the
repository's own sources in tier-1.
"""

from repro.lint.engine import iter_python_files, lint_paths, max_severity
from repro.lint.findings import (
    LINT_FORMAT,
    Finding,
    Severity,
    format_findings_json,
    format_findings_text,
)
from repro.lint.registry import (
    FileRule,
    ProjectRule,
    Rule,
    all_rules,
    register,
    rule_ids,
)

__all__ = [
    "FileRule",
    "Finding",
    "LINT_FORMAT",
    "ProjectRule",
    "Rule",
    "Severity",
    "all_rules",
    "format_findings_json",
    "format_findings_text",
    "iter_python_files",
    "lint_paths",
    "max_severity",
    "register",
    "rule_ids",
]
