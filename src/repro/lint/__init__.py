"""Project-specific static analysis (``repro lint``).

The paper's correctness rests on invariants the type system cannot
express — Definition 1's no-simultaneous-charging constraint, the
J/W/s/m unit discipline of :mod:`repro.units`, and deterministic
seeded experiments. This package checks the *statically visible*
consequences of those invariants at review time, before
:mod:`repro.core.validation` ever sees a schedule at runtime:

* an AST visitor framework (:mod:`repro.lint.visitor`) plus a rule
  registry (:mod:`repro.lint.registry`) and a
  :class:`~repro.lint.findings.Finding` record with ``file:line``
  spans and severities;
* six project rules (:mod:`repro.lint.rules`): unit-suffix
  discipline, no exact float equality, seeded randomness, no mutable
  defaults, the import-layering contract, and API-doc drift;
* inline suppression via ``# repro-lint: disable=<rule>``
  (:mod:`repro.lint.pragmas`).

Run it as ``repro lint [paths...]`` (``--format=json`` for machines)
or through :func:`lint_paths`; ``tests/test_lint_self.py`` gates the
repository's own sources in tier-1.
"""

from repro.lint.engine import iter_python_files, lint_paths, max_severity
from repro.lint.findings import (
    Finding,
    Severity,
    format_findings_json,
    format_findings_text,
)
from repro.lint.registry import (
    FileRule,
    ProjectRule,
    Rule,
    all_rules,
    register,
    rule_ids,
)

__all__ = [
    "FileRule",
    "Finding",
    "ProjectRule",
    "Rule",
    "Severity",
    "all_rules",
    "format_findings_json",
    "format_findings_text",
    "iter_python_files",
    "lint_paths",
    "max_severity",
    "register",
    "rule_ids",
]
