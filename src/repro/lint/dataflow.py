"""Intra-function order-sensitivity dataflow (powers rule R8).

The planning stack promises byte-identical output for a given network
and request set at any worker count (DESIGN §13). The classic way that
promise dies in Python is *unordered iteration*: a ``set`` (or
``frozenset``) is iterated and its elements flow into an
order-sensitive sink — a list being built, a float accumulator, a
schedule or JSONL line being emitted. Integer-keyed sets happen to
iterate stably today, but string sets reorder under
``PYTHONHASHSEED`` and any set reorders across CPython versions, so
the invariant must not rest on element types.

This module is the static side of that check: a small, precise
dataflow analysis over one scope (module body or function body) at a
time. It tracks which local names are *evidently* unordered —
assigned from set displays/comprehensions, ``set()``/``frozenset()``
calls, set-algebra operators or methods — and reports every place an
unordered value is iterated into an order-sensitive consumer without
an intervening ``sorted()``:

* ``for x in S:`` whose body appends/extends, accumulates with ``+=``
  (a bare integer-literal counter is exempt — counting is
  order-insensitive), writes to a stream, assigns through a
  subscript, or yields;
* direct materializing/accumulating calls — ``sum(S)``, ``list(S)``,
  ``tuple(S)``, ``enumerate(S)``, ``zip(S, …)``, ``sep.join(S)``,
  ``next(iter(S))``;
* list/dict comprehensions and generator expressions drawing from an
  unordered source (set comprehensions are fine — they rebuild a
  set).

Order-insensitive consumers (``sorted``, ``min``, ``max``, ``len``,
``any``, ``all``, ``set``, ``frozenset``, membership tests) never
trigger. ``sum`` does: float addition is not associative, so the sum
of a set of floats is hash-order-dependent in its last bits — exactly
the divergence the runtime sanitizer (``repro sanitize``) exists to
catch.

The analysis is deliberately first-order: only names bound in the
scope under analysis (or an enclosing one) are classified, and an
unknown value is assumed ordered. That keeps the rule's precision
high — every finding points at syntactic evidence of a set — at the
cost of missing hazards hidden behind attribute or call boundaries;
the runtime parity harness backstops those.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

#: Set methods whose result is again an unordered collection.
SET_ALGEBRA_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Builtins whose call result is an unordered collection.
SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: Builtins that consume an iterable without depending on its order.
ORDER_SAFE_CONSUMERS = frozenset(
    {"sorted", "len", "min", "max", "any", "all", "set", "frozenset"}
)

#: Builtins that materialize or accumulate their iterable in
#: iteration order — handing them an unordered value is a hazard.
ORDER_SENSITIVE_CONSUMERS = frozenset(
    {"sum", "list", "tuple", "enumerate", "zip", "reversed"}
)

#: Method calls inside a loop body that record elements in visit order.
ACCUMULATING_METHODS = frozenset(
    {"append", "extend", "insert", "write", "writelines", "appendleft"}
)

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class OrderHazard:
    """One unordered-iteration hazard found in a scope.

    Attributes:
        node: the AST node to report (the loop, call or comprehension).
        kind: ``"loop"``, ``"call"`` or ``"comprehension"``.
        detail: human-readable description of source and sink.
    """

    node: ast.AST
    kind: str
    detail: str


class _Env:
    """Name -> is-unordered bindings with enclosing-scope fallback."""

    def __init__(self, parent: Optional["_Env"] = None):
        self.parent = parent
        self.names: Dict[str, bool] = {}

    def set(self, name: str, unordered: bool) -> None:
        self.names[name] = unordered

    def is_unordered(self, name: str) -> bool:
        env: Optional[_Env] = self
        while env is not None:
            if name in env.names:
                return env.names[name]
            env = env.parent
        return False


def _call_name(node: ast.Call) -> str:
    """Bare or attribute name of the called object (``""`` if complex)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def is_unordered_expr(node: ast.expr, env: _Env) -> bool:
    """Whether ``node`` evidently evaluates to an unordered collection."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return env.is_unordered(node.id)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in SET_CONSTRUCTORS:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in SET_ALGEBRA_METHODS
            and is_unordered_expr(func.value, env)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return is_unordered_expr(node.left, env) or is_unordered_expr(
            node.right, env
        )
    if isinstance(node, ast.IfExp):
        return is_unordered_expr(node.body, env) or is_unordered_expr(
            node.orelse, env
        )
    return False


def describe_source(node: ast.expr) -> str:
    """Short human description of the unordered source expression."""
    if isinstance(node, ast.Set):
        return "a set display"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Name):
        return f"set-valued name {node.id!r}"
    if isinstance(node, ast.Call):
        name = _call_name(node)
        return f"{name}(...)" if name else "a set-valued call"
    if isinstance(node, ast.BinOp):
        return "a set-algebra expression"
    return "an unordered expression"


def _loop_sink(body: Sequence[ast.stmt]) -> Optional[str]:
    """First order-sensitive operation in a loop body, or ``None``.

    Nested function definitions open a new scope and are skipped —
    their bodies do not execute per iteration.
    """
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            if isinstance(node, ast.AugAssign):
                # A bare integer-literal counter (n += 1) is
                # order-insensitive; any other accumulation is not.
                value = node.value
                if not (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, int)
                ):
                    return "accumulates with an augmented assignment"
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if isinstance(node.func, ast.Attribute) and (
                    name in ACCUMULATING_METHODS
                ):
                    return f".{name}() records elements in visit order"
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yields elements in visit order"
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        return (
                            "assigns through a subscript "
                            "(insertion order becomes visit order)"
                        )
    return None


class _ScopeAnalyzer(ast.NodeVisitor):
    """Single-scope walk: track unordered names, collect hazards."""

    def __init__(self, env: _Env, hazards: List[OrderHazard]):
        self.env = env
        self.hazards = hazards
        #: Nodes whose unordered-ness a safe consumer already blessed.
        self._blessed: set = set()

    # -- binding -------------------------------------------------------

    def _bind_target(self, target: ast.expr, unordered: bool) -> None:
        if isinstance(target, ast.Name):
            self.env.set(target.id, unordered)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        unordered = is_unordered_expr(node.value, self.env)
        for target in node.targets:
            self._bind_target(target, unordered)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if node.value is not None:
            self._bind_target(
                node.target, is_unordered_expr(node.value, self.env)
            )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            if is_unordered_expr(node.value, self.env):
                self.env.set(node.target.id, True)

    # -- scopes --------------------------------------------------------

    def _enter_function(self, node: _FuncNode) -> None:
        analyze_scope(node.body, _Env(self.env), self.hazards)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Class bodies are their own scope; methods recurse from there.
        analyze_scope(node.body, _Env(self.env), self.hazards)

    # -- sinks ---------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if is_unordered_expr(node.iter, self.env) and (
            id(node.iter) not in self._blessed
        ):
            sink = _loop_sink(node.body)
            if sink is not None:
                self.hazards.append(
                    OrderHazard(
                        node=node,
                        kind="loop",
                        detail=(
                            f"loop over {describe_source(node.iter)} "
                            f"{sink}"
                        ),
                    )
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if isinstance(node.func, ast.Name) and name in ORDER_SAFE_CONSUMERS:
            # sorted(S), len(S), ... — bless the direct arguments so
            # the generic walk below does not re-flag them.
            for arg in node.args:
                self._blessed.add(id(arg))
                if isinstance(arg, (ast.ListComp, ast.GeneratorExp)):
                    for gen in arg.generators:
                        self._blessed.add(id(gen.iter))
        elif name in ORDER_SENSITIVE_CONSUMERS or name == "join":
            for arg in node.args:
                if is_unordered_expr(arg, self.env) and (
                    id(arg) not in self._blessed
                ):
                    self.hazards.append(
                        OrderHazard(
                            node=node,
                            kind="call",
                            detail=(
                                f"{name}() consumes "
                                f"{describe_source(arg)} in iteration "
                                f"order"
                            ),
                        )
                    )
        elif (
            name == "next"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and _call_name(node.args[0]) == "iter"
            and node.args[0].args
            and is_unordered_expr(node.args[0].args[0], self.env)
        ):
            self.hazards.append(
                OrderHazard(
                    node=node,
                    kind="call",
                    detail=(
                        "next(iter(...)) picks the hash-order-first "
                        f"element of "
                        f"{describe_source(node.args[0].args[0])}"
                    ),
                )
            )
        self.generic_visit(node)

    def _check_comprehension(
        self,
        node: Union[ast.ListComp, ast.DictComp, ast.GeneratorExp],
        what: str,
    ) -> None:
        for gen in node.generators:
            if is_unordered_expr(gen.iter, self.env) and (
                id(gen.iter) not in self._blessed
            ):
                self.hazards.append(
                    OrderHazard(
                        node=node,
                        kind="comprehension",
                        detail=(
                            f"{what} draws from "
                            f"{describe_source(gen.iter)} in iteration "
                            f"order"
                        ),
                    )
                )
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, "list comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, "dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        if id(node) not in self._blessed:
            self._check_comprehension(node, "generator expression")


def analyze_scope(
    body: Sequence[ast.stmt],
    env: _Env,
    hazards: List[OrderHazard],
) -> None:
    """Walk one scope's statements, recursing into nested scopes."""
    analyzer = _ScopeAnalyzer(env, hazards)
    for stmt in body:
        analyzer.visit(stmt)


def order_hazards(tree: ast.Module) -> List[OrderHazard]:
    """All unordered-iteration hazards in a parsed module."""
    hazards: List[OrderHazard] = []
    analyze_scope(tree.body, _Env(), hazards)
    return hazards


__all__ = [
    "ACCUMULATING_METHODS",
    "ORDER_SAFE_CONSUMERS",
    "ORDER_SENSITIVE_CONSUMERS",
    "OrderHazard",
    "SET_ALGEBRA_METHODS",
    "SET_CONSTRUCTORS",
    "analyze_scope",
    "describe_source",
    "is_unordered_expr",
    "order_hazards",
]
