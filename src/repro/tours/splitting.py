"""Rooted min-max splitting of one tour into ``K`` closed tours.

Given a single closed tour through all sojourn locations (rooted at the
depot) where every node also carries a *service weight* (its charging
duration), split the visit order into at most ``K`` consecutive
segments. Each segment becomes one MCV's closed tour
``depot -> segment -> depot``; a segment's cost is its travel time plus
the service weights of its nodes. The goal is to minimise the maximum
segment cost.

This is the Frederickson–Hecht–Kim ``k-SPLITOUR`` idea extended with
node weights, and it is the splitting step inside our implementation of
the Liang et al. approximation for the ``K``-optimal closed tour
problem (the paper's Definition 2). For a fixed visit order the optimal
consecutive split is found exactly by binary search over the bound
``B`` with a greedy feasibility check: walk the order, cut whenever
adding the next node would push the current segment (plus its return
leg) beyond ``B``. Greedy packing is optimal for consecutive splits, so
the binary search converges to the best achievable max-cost for the
given order.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.geometry.distcache import DistanceCache
from repro.geometry.point import PointLike
from repro.tours.arrays import (
    greedy_split_cuts,
    split_min_max_ranges,
    tour_legs,
)

#: Relative tolerance at which the binary search over ``B`` stops.
_BINARY_SEARCH_REL_TOL = 1e-9
_BINARY_SEARCH_MAX_ITER = 100

#: Pairwise distance lookup over node labels; ``None`` means the depot.
DistanceFn = Callable[[Hashable, Hashable], float]


def segment_cost(
    segment: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    speed_mps: float,
    service: Callable[[Hashable], float],
    dist: Optional[DistanceFn] = None,
) -> float:
    """Delay of one closed tour depot -> segment -> depot."""
    if not segment:
        return 0.0
    if dist is None:
        dist = DistanceCache(positions, depot)
    travel = dist(None, segment[0])
    for a, b in zip(segment, segment[1:]):
        travel += dist(a, b)
    travel += dist(segment[-1], None)
    return travel / speed_mps + sum(service(v) for v in segment)


def greedy_split_with_bound(
    order: Sequence[Hashable],
    bound: float,
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    speed_mps: float,
    service: Callable[[Hashable], float],
    dist: Optional[DistanceFn] = None,
) -> Optional[List[List[Hashable]]]:
    """Greedily cut ``order`` into segments of cost ≤ ``bound``.

    Returns the list of segments, or ``None`` when some single node
    already exceeds the bound (no feasible split exists for any number
    of vehicles).
    """
    if dist is None:
        dist = DistanceCache(positions, depot)
    legs = tour_legs(dist, order, service)
    if legs is not None:
        cuts = greedy_split_cuts(legs, bound, speed_mps)
        if cuts is None:
            return None
        order = list(order)
        bounds = [0, *cuts, len(order)]
        return [
            order[bounds[k] : bounds[k + 1]]
            for k in range(len(bounds) - 1)
            if bounds[k] < bounds[k + 1]
        ]
    segments: List[List[Hashable]] = []
    current: List[Hashable] = []
    # Cost of the current segment *without* the return-to-depot leg.
    open_cost = 0.0
    last: Optional[Hashable] = None

    for node in order:
        step = dist(last, node) / speed_mps + service(node)
        closing = dist(node, None) / speed_mps
        if current and open_cost + step + closing > bound:
            # Close the current segment before this node.
            segments.append(current)
            current = []
            last = None
            open_cost = 0.0
            step = dist(None, node) / speed_mps + service(node)
        if not current and step + closing > bound:
            return None  # single node infeasible under this bound
        current.append(node)
        open_cost += step
        last = node
    if current:
        segments.append(current)
    return segments


def split_tour_min_max(
    order: Sequence[Hashable],
    num_tours: int,
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    speed_mps: float,
    service: Callable[[Hashable], float],
    dist: Optional[DistanceFn] = None,
) -> Tuple[List[List[Hashable]], float]:
    """Best consecutive split of ``order`` into ≤ ``num_tours`` segments.

    Binary-searches the max-cost bound ``B``; for each candidate the
    greedy packer (:func:`greedy_split_with_bound`) checks whether
    ``order`` fits into at most ``num_tours`` segments of cost ≤ ``B``.

    Returns:
        ``(segments, achieved_bound)`` where ``segments`` has exactly
        ``num_tours`` entries (padded with empty segments), and
        ``achieved_bound`` is the realised maximum segment cost.

    Raises:
        ValueError: if ``num_tours`` is not positive.
    """
    if num_tours <= 0:
        raise ValueError(f"num_tours must be positive, got {num_tours}")
    order = list(order)
    if not order:
        return [[] for _ in range(num_tours)], 0.0
    if dist is None:
        dist = DistanceCache(positions, depot)
    legs = tour_legs(dist, order, service)
    if legs is not None:
        ranges, achieved = split_min_max_ranges(legs, num_tours, speed_mps)
        padded = [order[s:e] for s, e in ranges]
        padded.extend([] for _ in range(num_tours - len(padded)))
        return padded, achieved

    def max_cost(segments: Sequence[Sequence[Hashable]]) -> float:
        return max(
            segment_cost(seg, positions, depot, speed_mps, service, dist)
            for seg in segments
            if seg
        )

    # Lower bound: the costliest single-node round trip. Upper bound:
    # the whole order as one segment.
    low = max(
        segment_cost([node], positions, depot, speed_mps, service, dist)
        for node in order
    )
    high = segment_cost(order, positions, depot, speed_mps, service, dist)

    def feasible(bound: float) -> Optional[List[List[Hashable]]]:
        # Inflate the bound by a hair: the packer accumulates travel
        # legs in a different order than segment_cost, so exact
        # equality is not float-safe.
        slack = bound * (1.0 + 1e-12) + 1e-9
        segs = greedy_split_with_bound(
            order, slack, positions, depot, speed_mps, service, dist
        )
        if segs is None or len(segs) > num_tours:
            return None
        return segs

    best = feasible(high)
    assert best is not None, "the full tour must fit in one segment"
    low_split = feasible(low)
    if low_split is not None:
        best = low_split
    else:
        for _ in range(_BINARY_SEARCH_MAX_ITER):
            if high - low <= _BINARY_SEARCH_REL_TOL * max(high, 1.0):
                break
            mid = (low + high) / 2.0
            segs = feasible(mid)
            if segs is None:
                low = mid
            else:
                high = mid
                best = segs
    padded = [list(seg) for seg in best]
    padded.extend([] for _ in range(num_tours - len(padded)))
    return padded, max_cost(best)
