"""Structured-array tour engine: index-space codecs + vectorised kernels.

The label-based tour code (``tours/{tsp,improve,splitting,energy_budget}``)
walks Python lists of ``Hashable`` labels and calls a memoized
:class:`~repro.geometry.distcache.DistanceCache` once per pair. That is
the right shape at paper scale (~hundreds of sojourn stops) but it is
the wall at 10k+ nodes: 2-opt alone evaluates ``O(n^2)`` moves per
round through Python-level arithmetic.

This module supplies the array-native representation and the kernels:

* :class:`NodeIndexCodec` — a dense ``label <-> int32 index`` space over
  one tour's node set; the depot is always the *last* index
  (``codec.depot_index == len(labels)``), so a ``(n+1) x (n+1)`` matrix
  row/column addresses it uniformly.
* :class:`ArrayDistance` — the codec plus the dense float64 distance
  matrix exported by :meth:`DistanceCache.dense_matrix`.
* :class:`ArrayTour` / :class:`TourPlan` — contiguous ``int32`` visit
  order plus float64 service/travel prefix arrays (cumulative sums used
  for O(1) delay/length reads and for diagnostics).
* kernels — :func:`two_opt_indices`, :func:`or_opt_indices`,
  :func:`greedy_split_cuts`, :func:`split_min_max_ranges`,
  :func:`split_dual_ranges`: numpy re-expressions of the legacy loops.

Byte-parity contract
--------------------
Every float the kernels emit is **byte-identical** to the legacy label
path (the acceptance bar PR 3/5/6 set for ``dist=`` threading and
``within_bulk``). Two rules make that possible:

1. **Distances come from ``euclidean`` (``math.hypot``), never from a
   numpy reimplementation.** CPython's ``math.hypot`` is its own
   correctly-rounded algorithm (not libm), and ``np.hypot`` disagrees
   with it in the last ulp on ~0.6% of random pairs on this platform —
   measured, not hypothetical. ``DistanceCache.dense_matrix`` therefore
   fills the matrix with ``euclidean`` values; numpy only *gathers* and
   *combines* them.
2. **Numpy combines floats in the legacy evaluation order.** Elementwise
   ``+ - * /`` on float64 match scalar IEEE ops exactly, and
   ``np.cumsum`` accumulates sequentially — so running sums mirror
   ``acc += step`` loops bytewise. ``np.sum`` (pairwise) would not;
   it is deliberately never used here. Prefix-sum *differences* are
   likewise never used for costs (``(a+b)-a != b`` in floats): split
   feasibility recomputes a fresh cumsum per segment, which keeps the
   whole pass O(n) amortised without breaking parity.

The engine is on by default and used whenever the caller's ``dist`` is
a :class:`DistanceCache` with a depot (and, for matrix-backed kernels,
the node count is at most :data:`DENSE_MAX_NODES`); anything else —
closure distance functions, depot-less caches, oversized instances —
falls back to the legacy label path. :func:`use_arrays` switches the
engine off for a scope, which is how the parity tests keep the legacy
code as the oracle.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.geometry.distcache import DistanceCache

#: Largest node count for which a dense ``(n+1)^2`` float64 matrix is
#: built (~134 MB at the cap). Above it the matrix-backed kernels
#: (2-opt / Or-opt / TSP constructions) fall back to the label path;
#: the split kernels need only O(n) leg arrays and have no cap.
DENSE_MAX_NODES = 4096

#: Binary-search stopping rule — mirrors ``tours.splitting``; duplicated
#: (not imported) to keep the import DAG acyclic: splitting imports this
#: module for its fast path.
_BINARY_SEARCH_REL_TOL = 1e-9
_BINARY_SEARCH_MAX_ITER = 100

_arrays_enabled = True


def arrays_enabled() -> bool:
    """Whether the array engine is currently routing eligible calls."""
    return _arrays_enabled


@contextmanager
def use_arrays(enabled: bool) -> Iterator[None]:
    """Scope the array engine on or off (tests use ``use_arrays(False)``
    to run the legacy label path as a parity oracle)."""
    global _arrays_enabled
    previous = _arrays_enabled
    _arrays_enabled = bool(enabled)
    try:
        yield
    finally:
        _arrays_enabled = previous


def canonical_labels(labels: Sequence[Hashable]) -> Tuple[Hashable, ...]:
    """Order-independent canonical form of a node set.

    Sorted when the labels are mutually comparable (the common case:
    integer sensor ids), else first-seen order. Canonicalising the
    memo key lets every kernel over the same node *set* share one
    dense matrix regardless of visit order.
    """
    try:
        return tuple(sorted(labels))
    except TypeError:
        return tuple(labels)


class NodeIndexCodec:
    """Bidirectional ``label <-> int32 index`` map over one node set.

    Index ``i`` is position ``i`` in ``labels``; the depot is the extra
    index ``len(labels)`` so dense matrices address it as the last
    row/column without a sentinel label.
    """

    __slots__ = ("labels", "_index_of")

    def __init__(self, labels: Sequence[Hashable]):
        self.labels: Tuple[Hashable, ...] = tuple(labels)
        self._index_of: Dict[Hashable, int] = {
            label: i for i, label in enumerate(self.labels)
        }
        if len(self._index_of) != len(self.labels):
            raise ValueError("codec labels must be unique")

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def depot_index(self) -> int:
        """The dense index reserved for the depot (always the last)."""
        return len(self.labels)

    def encode(self, order: Sequence[Hashable]) -> np.ndarray:
        """Labels -> contiguous int32 index array."""
        index_of = self._index_of
        return np.fromiter(
            (index_of[label] for label in order),
            dtype=np.int32,
            count=len(order),
        )

    def decode(self, indices: Sequence[int]) -> List[Hashable]:
        """Index array -> label list (depot index is not decodable)."""
        labels = self.labels
        return [labels[int(i)] for i in indices]


@dataclass(frozen=True, eq=False)
class ArrayDistance:
    """A codec plus the dense distance matrix over its index space.

    ``matrix[i, j]`` is the ``euclidean`` distance between the nodes at
    codec indices ``i`` and ``j``; row/column ``codec.depot_index`` is
    the depot. Entries are byte-identical to ``DistanceCache`` lookups.
    """

    codec: NodeIndexCodec
    matrix: np.ndarray

    @classmethod
    def from_cache(
        cls,
        dist: DistanceCache,
        labels: Sequence[Hashable],
    ) -> "ArrayDistance":
        """Build over ``labels`` (in the given order) from a cache.

        The underlying matrix is memoized on the cache under the
        *canonical* label order; a permuted view is gathered from it, so
        TSP construction (positional order) and splitting (visit order)
        share one O(n^2) build.
        """
        codec = NodeIndexCodec(labels)
        canon = canonical_labels(labels)
        matrix = dist.dense_matrix(canon)
        if canon != codec.labels:
            canon_index = {label: i for i, label in enumerate(canon)}
            perm = np.fromiter(
                (canon_index[label] for label in codec.labels),
                dtype=np.intp,
                count=len(codec.labels),
            )
            perm = np.append(perm, len(canon))  # depot stays last
            matrix = matrix[np.ix_(perm, perm)]
        return cls(codec, matrix)


def dense_backend(
    dist: object,
    labels: Sequence[Hashable],
) -> Optional[ArrayDistance]:
    """Resolve a matrix-backed engine for ``labels``, or ``None``.

    ``None`` (→ legacy label path) when the engine is disabled, when
    ``dist`` is not a depot-carrying :class:`DistanceCache`, or when the
    instance exceeds :data:`DENSE_MAX_NODES`.
    """
    if not _arrays_enabled:
        return None
    if not isinstance(dist, DistanceCache) or not dist.has_depot:
        return None
    if not 2 <= len(labels) <= DENSE_MAX_NODES:
        return None
    try:
        return ArrayDistance.from_cache(dist, labels)
    except ValueError:
        return None  # duplicate labels: let the legacy path handle it


# ---------------------------------------------------------------------------
# Tour objects
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class ArrayTour:
    """One depot-rooted closed tour in index space.

    Attributes:
        dense: the codec + matrix the indices refer to.
        order: int32 visit order (codec indices, depot excluded).
        service_s: per-visit service seconds, aligned with ``order``.
    """

    dense: ArrayDistance
    order: np.ndarray
    service_s: np.ndarray
    _prefixes: Dict[str, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def from_labels(
        cls,
        dense: ArrayDistance,
        order: Sequence[Hashable],
        service: Callable[[Hashable], float],
    ) -> "ArrayTour":
        svc = np.fromiter(
            (service(label) for label in order),
            dtype=np.float64,
            count=len(order),
        )
        return cls(dense, dense.codec.encode(order), svc)

    def labels(self) -> List[Hashable]:
        """The visit order as labels."""
        return self.dense.codec.decode(self.order)

    @property
    def travel_prefix_m(self) -> np.ndarray:
        """Cumulative travel metres after each visit (depot leg first).

        ``travel_prefix_m[k]`` is the distance driven when arriving at
        visit ``k``; it excludes the final return-to-depot leg.
        """
        cached = self._prefixes.get("travel")
        if cached is None:
            n = self.order.size
            legs = np.empty(n, dtype=np.float64)
            if n:
                depot = self.dense.codec.depot_index
                matrix = self.dense.matrix
                legs[0] = matrix[depot, self.order[0]]
                legs[1:] = matrix[self.order[:-1], self.order[1:]]
            cached = np.cumsum(legs)
            self._prefixes["travel"] = cached
        return cached

    @property
    def service_prefix_s(self) -> np.ndarray:
        """Cumulative service seconds through each visit."""
        cached = self._prefixes.get("service")
        if cached is None:
            cached = np.cumsum(self.service_s)
            self._prefixes["service"] = cached
        return cached

    def travel_length_m(self) -> float:
        """Closed-tour travel length including the return leg."""
        if not self.order.size:
            return 0.0
        depot = self.dense.codec.depot_index
        closing = self.dense.matrix[self.order[-1], depot]
        return float(self.travel_prefix_m[-1] + closing)

    def delay_s(self, speed_mps: float) -> float:
        """Tour delay: travel time plus total service time."""
        if not self.order.size:
            return 0.0
        return float(
            self.travel_length_m() / speed_mps + self.service_prefix_s[-1]
        )


@dataclass(frozen=True, eq=False)
class TourPlan:
    """A K-tour split in index space: the kernels' structured result."""

    tours: Tuple[ArrayTour, ...]
    achieved_bound_s: float

    def tour_labels(self) -> List[List[Hashable]]:
        return [tour.labels() for tour in self.tours]


# ---------------------------------------------------------------------------
# Local-search kernels (dense-matrix backed)
# ---------------------------------------------------------------------------


def two_opt_indices(
    matrix: np.ndarray,
    depot_index: int,
    order: np.ndarray,
    max_rounds: int = 30,
    min_gain: float = 1e-9,
) -> np.ndarray:
    """First-improvement 2-opt over index space; parity with
    :func:`repro.tours.improve.two_opt`.

    For each pivot ``i`` the whole row of candidate reversals
    ``order[i..j]`` is scored in one vector expression
    ``(D[b,c_i] + D[c_j,a_j]) - (D[b,c_j] + D[c_i,a_j])`` and the first
    ``delta > min_gain`` is applied — exactly the legacy scan order,
    including rescanning the tail with the mutated order after a move.
    """
    current = np.array(order, dtype=np.int32)
    n = current.size
    if n < 3:
        return current
    for _ in range(max_rounds):
        improved = False
        for i in range(n - 1):
            before_i = depot_index if i == 0 else current[i - 1]
            j = i + 1
            while j < n:
                nodes_j = current[j:]
                after_j = np.empty(n - j, dtype=np.int32)
                after_j[:-1] = current[j + 1:]
                after_j[-1] = depot_index
                node_i = current[i]
                delta = (
                    matrix[before_i, node_i] + matrix[nodes_j, after_j]
                ) - (matrix[before_i, nodes_j] + matrix[node_i, after_j])
                hits = np.nonzero(delta > min_gain)[0]
                if not hits.size:
                    break
                j_star = j + int(hits[0])
                current[i : j_star + 1] = current[i : j_star + 1][::-1].copy()
                improved = True
                j = j_star + 1
        if not improved:
            break
    return current


def or_opt_indices(
    matrix: np.ndarray,
    depot_index: int,
    order: np.ndarray,
    segment_lengths: Sequence[int] = (1, 2, 3),
    max_rounds: int = 10,
    min_gain: float = 1e-9,
) -> np.ndarray:
    """Or-opt segment relocation; parity with
    :func:`repro.tours.improve.or_opt`.

    The legacy insertion scan keeps the *first* position attaining the
    running strict minimum below ``-min_gain``; ``np.argmin`` returns
    the first occurrence of the minimum, so the accepted move is
    identical.
    """
    current = [int(x) for x in np.asarray(order).tolist()]
    for _ in range(max_rounds):
        improved = False
        for seg_len in segment_lengths:
            n = len(current)
            if n <= seg_len:
                continue
            i = 0
            while i + seg_len <= len(current):
                seg_first = current[i]
                seg_last = current[i + seg_len - 1]
                rest = current[:i] + current[i + seg_len:]
                before = current[i - 1] if i > 0 else depot_index
                after = (
                    current[i + seg_len]
                    if i + seg_len < len(current)
                    else depot_index
                )
                removal_gain = (
                    matrix[before, seg_first]
                    + matrix[seg_last, after]
                    - matrix[before, after]
                )
                rest_arr = np.fromiter(rest, dtype=np.int32, count=len(rest))
                pred = np.empty(len(rest) + 1, dtype=np.int32)
                pred[0] = depot_index
                pred[1:] = rest_arr
                succ = np.empty(len(rest) + 1, dtype=np.int32)
                succ[:-1] = rest_arr
                succ[-1] = depot_index
                delta = (
                    matrix[pred, seg_first]
                    + matrix[seg_last, succ]
                    - matrix[pred, succ]
                ) - removal_gain
                pos = int(np.argmin(delta))
                if delta[pos] < -min_gain:
                    segment = current[i : i + seg_len]
                    current = rest[:pos] + segment + rest[pos:]
                    improved = True
                else:
                    i += 1
        if not improved:
            break
    return np.asarray(current, dtype=np.int32)


# ---------------------------------------------------------------------------
# Split kernels (leg-array backed — no dense matrix, no size cap)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class TourLegs:
    """O(n) per-position leg/service arrays for one visit order.

    ``start_m[k]`` is the depot->node leg, ``chain_m[k]`` the leg from
    the previous node (``chain_m[0]`` unused), ``closing_m[k]`` the
    node->depot leg, all in metres; ``service_s[k]`` the node's service
    seconds. Built once per split call and reused across every binary-
    search iteration — the legacy path re-walks the distance cache per
    iteration, which is where the split speedup comes from.
    """

    start_m: np.ndarray
    chain_m: np.ndarray
    closing_m: np.ndarray
    service_s: np.ndarray

    def __len__(self) -> int:
        return self.start_m.size


def tour_legs(
    dist: object,
    order: Sequence[Hashable],
    service: Callable[[Hashable], float],
) -> Optional[TourLegs]:
    """Build :class:`TourLegs` for ``order``, or ``None`` for fallback.

    Requires the array engine on and a depot-carrying
    :class:`DistanceCache`; distances come from scalar cache lookups, so
    every entry is byte-identical to what the legacy loops would see.
    ``service`` must be pure — it is evaluated once per node here, while
    the legacy path re-evaluates it every binary-search iteration.
    """
    if not _arrays_enabled:
        return None
    if not isinstance(dist, DistanceCache) or not dist.has_depot:
        return None
    n = len(order)
    start = np.fromiter(
        (dist(None, node) for node in order), dtype=np.float64, count=n
    )
    chain = np.empty(n, dtype=np.float64)
    if n:
        chain[0] = start[0]
        for k in range(1, n):
            chain[k] = dist(order[k - 1], order[k])
    closing = np.fromiter(
        (dist(node, None) for node in order), dtype=np.float64, count=n
    )
    svc = np.fromiter(
        (service(node) for node in order), dtype=np.float64, count=n
    )
    return TourLegs(start, chain, closing, svc)


def greedy_split_cuts(
    legs: TourLegs,
    bound: float,
    speed_mps: float,
    max_segments: Optional[int] = None,
) -> Optional[List[int]]:
    """Greedy segment cut positions under ``bound``; parity with
    :func:`repro.tours.splitting.greedy_split_with_bound`.

    Returns the sorted positions where a new segment starts (``0`` is
    implicit), or ``None`` when a single node is infeasible — and, as a
    pure short-circuit, when more than ``max_segments`` segments would
    be needed (the caller's verdict is ``None`` either way).

    Each segment's running cost is a fresh ``np.cumsum`` over its own
    steps — sequential accumulation, byte-matching the legacy
    ``open_cost += step`` loop (a prefix-sum *difference* would not be).
    """
    n = len(legs)
    if not n:
        return []
    start_step = legs.start_m / speed_mps + legs.service_s
    chain_step = legs.chain_m / speed_mps + legs.service_s
    closing_t = legs.closing_m / speed_mps
    cuts: List[int] = []
    s = 0
    while s < n:
        steps = chain_step[s:].copy()
        steps[0] = start_step[s]
        running = np.cumsum(steps)
        violates = running + closing_t[s:] > bound
        if violates[0]:
            return None  # single node infeasible under this bound
        hits = np.nonzero(violates)[0]
        if not hits.size:
            break
        s += int(hits[0])
        cuts.append(s)
        if max_segments is not None and len(cuts) + 1 > max_segments:
            return None
    return cuts


def _cut_ranges(cuts: Sequence[int], n: int) -> List[Tuple[int, int]]:
    bounds = [0, *cuts, n]
    return [
        (bounds[k], bounds[k + 1])
        for k in range(len(bounds) - 1)
        if bounds[k] < bounds[k + 1]
    ]


def range_cost(
    legs: TourLegs, start: int, stop: int, speed_mps: float
) -> float:
    """Delay of the closed tour over positions ``[start, stop)``; parity
    with :func:`repro.tours.splitting.segment_cost` on that slice."""
    if start >= stop:
        return 0.0
    m = stop - start
    travel_legs = np.empty(m + 1, dtype=np.float64)
    travel_legs[0] = legs.start_m[start]
    travel_legs[1:m] = legs.chain_m[start + 1 : stop]
    travel_legs[m] = legs.closing_m[stop - 1]
    travel = np.cumsum(travel_legs)[-1]
    return float(
        travel / speed_mps + np.cumsum(legs.service_s[start:stop])[-1]
    )


def _split_bounds(legs: TourLegs, speed_mps: float) -> Tuple[float, float]:
    """Legacy low/high bounds: costliest single-node round trip and the
    whole order as one segment."""
    single = (legs.start_m + legs.closing_m) / speed_mps + legs.service_s
    low = float(np.max(single))
    high = range_cost(legs, 0, len(legs), speed_mps)
    return low, high


def split_min_max_ranges(
    legs: TourLegs,
    num_tours: int,
    speed_mps: float,
) -> Tuple[List[Tuple[int, int]], float]:
    """Binary-searched min-max split as position ranges; parity with
    :func:`repro.tours.splitting.split_tour_min_max`."""
    n = len(legs)
    if not n:
        return [], 0.0
    low, high = _split_bounds(legs, speed_mps)

    def feasible(bound: float) -> Optional[List[int]]:
        slack = bound * (1.0 + 1e-12) + 1e-9
        return greedy_split_cuts(legs, slack, speed_mps, num_tours)

    best = feasible(high)
    assert best is not None, "the full tour must fit in one segment"
    low_cuts = feasible(low)
    if low_cuts is not None:
        best = low_cuts
    else:
        for _ in range(_BINARY_SEARCH_MAX_ITER):
            if high - low <= _BINARY_SEARCH_REL_TOL * max(high, 1.0):
                break
            mid = (low + high) / 2.0
            cuts = feasible(mid)
            if cuts is None:
                low = mid
            else:
                high = mid
                best = cuts
    ranges = _cut_ranges(best, n)
    achieved = max(range_cost(legs, s, e, speed_mps) for s, e in ranges)
    return ranges, achieved


def split_dual_ranges(
    legs: TourLegs,
    num_tours: int,
    speed_mps: float,
    travel_j_per_m: float,
    drain_w: float,
    battery_j: float,
) -> Tuple[Optional[List[Tuple[int, int]]], float]:
    """Energy-and-delay constrained split as position ranges; parity
    with :func:`repro.tours.energy_budget.split_tour_energy_constrained`.

    ``drain_w`` is the charger's drawn power ``charge_rate_w /
    transfer_efficiency`` (pre-divided once — the legacy expression
    groups as ``(rate / eff) * seconds``, so the product is identical).
    """
    n = len(legs)
    if not n:
        return [], 0.0
    low, high = _split_bounds(legs, speed_mps)
    start_t = legs.start_m / speed_mps
    chain_t = legs.chain_m / speed_mps
    closing_t = legs.closing_m / speed_mps
    svc = legs.service_s

    def cuts_under(delay_bound_s: float) -> Optional[List[int]]:
        cuts: List[int] = []
        s = 0
        while s < n:
            leg_m = legs.chain_m[s:].copy()
            leg_m[0] = legs.start_m[s]
            leg_t = chain_t[s:].copy()
            leg_t[0] = start_t[s]
            svc_seg = svc[s:]
            # Sequential accumulations, shifted to "before this node";
            # the candidate expressions below then regroup exactly as
            # the legacy scalar code does.
            step_t = leg_t + svc_seg
            acc = np.cumsum(step_t)
            open_cost = np.empty_like(acc)
            open_cost[0] = 0.0
            open_cost[1:] = acc[:-1]
            acc_m = np.cumsum(leg_m)
            open_travel = np.empty_like(acc_m)
            open_travel[0] = 0.0
            open_travel[1:] = acc_m[:-1]
            acc_c = np.cumsum(svc_seg)
            open_charge = np.empty_like(acc_c)
            open_charge[0] = 0.0
            open_charge[1:] = acc_c[:-1]
            cost = ((open_cost + leg_t) + svc_seg) + closing_t[s:]
            travel = (open_travel + leg_m) + legs.closing_m[s:]
            charge = open_charge + svc_seg
            energy = travel_j_per_m * travel + drain_w * charge
            violates = ~((cost <= delay_bound_s) & (energy <= battery_j))
            if violates[0]:
                return None
            hits = np.nonzero(violates)[0]
            if not hits.size:
                break
            s += int(hits[0])
            cuts.append(s)
        return cuts

    def feasible(bound: float) -> Optional[List[int]]:
        slack = bound * (1.0 + 1e-12) + 1e-9
        cuts = cuts_under(slack)
        if cuts is None or len(cuts) + 1 > num_tours:
            return None
        return cuts

    best = feasible(high)
    if best is None:
        return None, float("inf")
    low_cuts = feasible(low)
    if low_cuts is not None:
        best = low_cuts
    else:
        for _ in range(_BINARY_SEARCH_MAX_ITER):
            if high - low <= _BINARY_SEARCH_REL_TOL * max(high, 1.0):
                break
            mid = (low + high) / 2.0
            cuts = feasible(mid)
            if cuts is None:
                low = mid
            else:
                high = mid
                best = cuts
    ranges = _cut_ranges(best, n)
    achieved = max(range_cost(legs, s, e, speed_mps) for s, e in ranges)
    return ranges, achieved


# ---------------------------------------------------------------------------
# TSP construction kernels
# ---------------------------------------------------------------------------


def nearest_neighbor_indices(
    dense: ArrayDistance,
) -> np.ndarray:
    """Depot-rooted nearest-neighbour order; parity with
    :func:`repro.tours.tsp.nearest_neighbor_tour` started at the depot.

    The legacy tie-break is ``(distance, str(label))``; distance ties
    are resolved here by a precomputed string rank over the codec's
    labels, which picks the identical node.
    """
    n = len(dense.codec)
    matrix = dense.matrix
    by_str = sorted(range(n), key=lambda k: str(dense.codec.labels[k]))
    rank = np.empty(n, dtype=np.int64)
    rank[by_str] = np.arange(n)
    remaining = np.arange(n, dtype=np.int64)
    order = np.empty(n, dtype=np.int32)
    current = dense.codec.depot_index
    for out in range(n):
        values = matrix[current, remaining]
        lowest = values.min()
        ties = remaining[values == lowest]
        if ties.size > 1:
            chosen = int(ties[np.argmin(rank[ties])])
        else:
            chosen = int(ties[0])
        order[out] = chosen
        remaining = remaining[remaining != chosen]
        current = chosen
    return order


def greedy_edge_indices(dense: ArrayDistance) -> np.ndarray:
    """Greedy-edge cycle rotated to start just after the depot; parity
    with :func:`repro.tours.tsp.greedy_edge_tour` over
    ``node_list + [DEPOT]``.

    The legacy edge sort key is ``(distance, i, j)`` over positional
    indices with the depot last — exactly this codec's index space, so
    ``np.lexsort`` with keys ``(j, i, distance)`` reproduces the edge
    order; degree/union-find filtering then walks it identically.
    """
    m = len(dense.codec) + 1  # real nodes + depot
    matrix = dense.matrix
    idx_i, idx_j = np.triu_indices(m, k=1)
    lengths = matrix[idx_i, idx_j]
    edge_order = np.lexsort((idx_j, idx_i, lengths))
    idx_i = idx_i[edge_order]
    idx_j = idx_j[edge_order]

    degree = [0] * m
    parent = list(range(m))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    adjacency: Dict[int, List[int]] = {i: [] for i in range(m)}
    added = 0
    for a, b in zip(idx_i.tolist(), idx_j.tolist()):
        if added == m - 1:
            break
        if degree[a] >= 2 or degree[b] >= 2:
            continue
        root_a, root_b = find(a), find(b)
        if root_a == root_b:
            continue
        parent[root_a] = root_b
        degree[a] += 1
        degree[b] += 1
        adjacency[a].append(b)
        adjacency[b].append(a)
        added += 1
    endpoints = [i for i in range(m) if degree[i] == 1]
    assert len(endpoints) == 2, "greedy edge construction left a broken path"
    adjacency[endpoints[0]].append(endpoints[1])
    adjacency[endpoints[1]].append(endpoints[0])

    depot = dense.codec.depot_index
    order: List[int] = []
    prev: Optional[int] = None
    current = depot
    while True:
        nxt = next(n for n in adjacency[current] if n != prev)
        if nxt == depot:
            break
        order.append(nxt)
        prev, current = current, nxt
    return np.asarray(order, dtype=np.int32)


__all__ = [
    "ArrayDistance",
    "ArrayTour",
    "DENSE_MAX_NODES",
    "NodeIndexCodec",
    "TourLegs",
    "TourPlan",
    "arrays_enabled",
    "canonical_labels",
    "dense_backend",
    "greedy_edge_indices",
    "greedy_split_cuts",
    "nearest_neighbor_indices",
    "or_opt_indices",
    "range_cost",
    "split_dual_ranges",
    "split_min_max_ranges",
    "tour_legs",
    "two_opt_indices",
    "use_arrays",
]
