"""Closed-tour construction for mobile chargers.

* :mod:`repro.tours.tour` — the :class:`Tour` value type (an ordered
  visit sequence rooted at the depot) and its delay arithmetic.
* :mod:`repro.tours.tsp` — TSP tour constructions (nearest-neighbour,
  greedy-edge, double-MST, Christofides).
* :mod:`repro.tours.improve` — 2-opt / Or-opt local search.
* :mod:`repro.tours.splitting` — rooted min-max splitting of one tour
  into ``K`` segments with node service weights (Frederickson-style).
* :mod:`repro.tours.kminmax` — the ``K``-optimal closed tour solver
  (Definition 2) used as Algorithm 1's subroutine; our implementation
  of the Liang et al. constant-factor approximation.
* :mod:`repro.tours.arrays` — the array tour engine (DESIGN §16):
  index-space tours over dense distance matrices with vectorised,
  byte-parity 2-opt / Or-opt / splitting kernels.
"""

from repro.tours.arrays import (
    ArrayDistance,
    ArrayTour,
    NodeIndexCodec,
    TourPlan,
    arrays_enabled,
    dense_backend,
    use_arrays,
)
from repro.tours.energy_budget import (
    MCVEnergyModel,
    minimum_chargers_energy_constrained,
    solve_k_minmax_energy_constrained,
    split_tour_energy_constrained,
    tour_energy,
)
from repro.tours.exact import exact_k_minmax, held_karp_tsp
from repro.tours.improve import or_opt, two_opt
from repro.tours.kminmax import solve_k_minmax_tours
from repro.tours.minchargers import (
    MinChargersResult,
    minimum_chargers_for_bound,
)
from repro.tours.splitting import greedy_split_with_bound, split_tour_min_max
from repro.tours.tour import Tour, tour_delay
from repro.tours.tsp import (
    build_tsp_order,
    christofides_tour,
    double_mst_tour,
    greedy_edge_tour,
    nearest_neighbor_tour,
)

__all__ = [
    "ArrayDistance",
    "ArrayTour",
    "MCVEnergyModel",
    "MinChargersResult",
    "NodeIndexCodec",
    "Tour",
    "TourPlan",
    "arrays_enabled",
    "build_tsp_order",
    "dense_backend",
    "use_arrays",
    "christofides_tour",
    "double_mst_tour",
    "exact_k_minmax",
    "greedy_edge_tour",
    "greedy_split_with_bound",
    "held_karp_tsp",
    "minimum_chargers_energy_constrained",
    "minimum_chargers_for_bound",
    "nearest_neighbor_tour",
    "or_opt",
    "solve_k_minmax_energy_constrained",
    "solve_k_minmax_tours",
    "split_tour_energy_constrained",
    "split_tour_min_max",
    "tour_delay",
    "tour_energy",
    "two_opt",
]
