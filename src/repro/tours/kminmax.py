"""The ``K``-optimal closed tour solver (paper Definition 2).

Given sojourn locations with charging durations ``τ(v)``, a depot and
``K`` vehicles, find ``K`` node-disjoint depot-rooted closed tours
covering all locations such that the longest tour delay (travel time
plus charging time) is minimised. The problem is NP-hard; Algorithm 1
invokes the constant-factor approximation of Liang et al. (ACM TOSN
2016). We realise that approximation as:

1. build one closed TSP tour through all locations (Christofides by
   default — the same Christofides backbone Liang et al. build on),
2. shorten it with 2-opt (order-only; service times are invariant),
3. split it into ≤ ``K`` consecutive segments minimising the maximum
   segment delay (:func:`repro.tours.splitting.split_tour_min_max`).

The classic Frederickson analysis gives tour-splitting a constant
factor relative to the optimal min-max cover, matching the constant-
factor contract the paper's analysis relies on (it only uses that the
subroutine is a constant approximation; the constant 5 enters the final
ratio symbolically).
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.geometry.distcache import DistanceCache
from repro.geometry.point import PointLike
from repro.tours.improve import or_opt, two_opt
from repro.tours.splitting import split_tour_min_max
from repro.tours.tsp import build_tsp_order

#: Pairwise distance lookup over node labels; ``None`` means the depot.
DistanceFn = Callable[[Hashable, Hashable], float]

#: Above this instance size, Christofides (cubic matching) falls back
#: to the greedy-edge construction, and local search is skipped above
#: twice this size; keeps a single scheduling call sub-second even for
#: saturated simulation rounds with ~1000 requests.
_CHRISTOFIDES_MAX_NODES = 250
_IMPROVE_MAX_NODES = 600


def solve_k_minmax_tours(
    nodes: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    num_tours: int,
    speed_mps: float,
    service: Callable[[Hashable], float],
    tsp_method: str = "christofides",
    improve: bool = True,
    dist: Optional[DistanceFn] = None,
) -> Tuple[List[List[Hashable]], float]:
    """Approximate the ``K``-optimal closed tour problem.

    Args:
        nodes: sojourn locations to cover (node-disjointly).
        positions: id -> position.
        depot: the common depot position.
        num_tours: ``K``, the number of vehicles.
        speed_mps: vehicle travel speed ``s``.
        service: per-node service (charging) duration ``τ(v)``.
        tsp_method: construction for the backbone tour (see
            :func:`repro.tours.tsp.build_tsp_order`).
        improve: run 2-opt + Or-opt on the backbone before splitting.
        dist: optional shared distance lookup (``None`` label = depot);
            one cache is created per call when omitted.

    Returns:
        ``(tours, longest_delay)`` — exactly ``num_tours`` visit lists
        (some possibly empty) and the achieved maximum tour delay.
    """
    if num_tours <= 0:
        raise ValueError(f"num_tours must be positive, got {num_tours}")
    node_list = list(nodes)
    if not node_list:
        return [[] for _ in range(num_tours)], 0.0
    if dist is None:
        dist = DistanceCache(positions, depot)
    method = tsp_method
    if method == "christofides" and len(node_list) > _CHRISTOFIDES_MAX_NODES:
        method = "greedy_edge"
    order = build_tsp_order(node_list, positions, depot, method=method, dist=dist)
    if improve and 3 <= len(order) <= _IMPROVE_MAX_NODES:
        order = two_opt(order, positions, depot, dist=dist)
        order = or_opt(order, positions, depot, dist=dist)
    return split_tour_min_max(
        order, num_tours, positions, depot, speed_mps, service, dist
    )
