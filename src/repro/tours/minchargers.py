"""Minimum number of chargers to meet a delay target.

The companion problem of Liang et al. (the paper's reference [13, 14]):
instead of fixing ``K`` and minimising the longest delay, fix a delay
budget ``B`` (e.g. "every requested sensor must be reachable and
charged within 24 h") and ask for the *fewest* mobile chargers whose
min-max tours all fit within ``B``.

Because the longest delay achieved by the K-tour solver is
non-increasing in ``K`` (more vehicles never hurt a min-max split of
the same backbone), a binary search over ``K`` against the solver gives
a simple, practical answer on top of the machinery this library already
has. The result inherits the solver's approximation character: the
returned ``K`` is sufficient for the *approximate* solver and therefore
for the optimum as well; it may exceed the true minimum by the solver's
approximation slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, List, Mapping, Optional, Sequence

from repro.geometry.distcache import DistanceCache
from repro.geometry.point import PointLike
from repro.tours.kminmax import solve_k_minmax_tours
from repro.tours.splitting import DistanceFn, segment_cost


@dataclass(frozen=True)
class MinChargersResult:
    """Outcome of a minimum-chargers search.

    Attributes:
        num_chargers: the smallest fleet size found to satisfy the
            budget (``None`` when even ``max_chargers`` fails).
        achieved_delay_s: the longest tour delay at that fleet size.
        tours: the witness tours.
    """

    num_chargers: Optional[int]
    achieved_delay_s: float
    tours: List[List[Hashable]]

    @property
    def feasible(self) -> bool:
        return self.num_chargers is not None


def minimum_chargers_for_bound(
    nodes: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    delay_bound_s: float,
    speed_mps: float,
    service: Callable[[Hashable], float],
    max_chargers: int = 64,
    tsp_method: str = "christofides",
    dist: Optional[DistanceFn] = None,
) -> MinChargersResult:
    """Fewest chargers whose min-max tours fit within ``delay_bound_s``.

    Args:
        nodes: sojourn locations to cover.
        positions: id -> position.
        depot: common depot.
        delay_bound_s: the per-tour delay budget ``B``.
        speed_mps: vehicle speed.
        service: per-node charging duration.
        max_chargers: search ceiling; if even this many vehicles cannot
            meet the budget (e.g. one node's round trip alone exceeds
            it), the result is infeasible.
        tsp_method: backbone construction.
        dist: optional shared distance lookup (``None`` label = depot);
            one cache is created for the whole search when omitted —
            previously every probe of the ``K`` search rebuilt its own.

    Returns:
        A :class:`MinChargersResult`.

    Raises:
        ValueError: on a non-positive bound or ceiling.
    """
    if delay_bound_s <= 0:
        raise ValueError(f"delay bound must be positive: {delay_bound_s}")
    if max_chargers <= 0:
        raise ValueError(f"max_chargers must be positive: {max_chargers}")
    node_list = list(nodes)
    if not node_list:
        return MinChargersResult(
            num_chargers=0, achieved_delay_s=0.0, tours=[]
        )
    if dist is None:
        dist = DistanceCache(positions, depot)

    # Quick infeasibility test: a single node whose round trip plus
    # service exceeds the budget can never be served, by any fleet.
    worst_single = max(
        segment_cost([n], positions, depot, speed_mps, service, dist)
        for n in node_list
    )
    if worst_single > delay_bound_s:
        return MinChargersResult(
            num_chargers=None, achieved_delay_s=worst_single, tours=[]
        )

    def attempt(k: int):
        return solve_k_minmax_tours(
            node_list, positions, depot, k, speed_mps, service,
            tsp_method=tsp_method, dist=dist,
        )

    # Exponential ramp-up to find an upper bound, then binary search.
    hi = 1
    tours, delay = attempt(hi)
    best = (hi, tours, delay)
    while delay > delay_bound_s and hi < max_chargers:
        hi = min(hi * 2, max_chargers)
        tours, delay = attempt(hi)
        best = (hi, tours, delay)
    if delay > delay_bound_s:
        return MinChargersResult(
            num_chargers=None, achieved_delay_s=delay, tours=tours
        )

    lo = hi // 2 if hi > 1 else 1
    # Invariant: attempt(hi) meets the budget; attempt(lo) unknown.
    while lo < hi:
        mid = (lo + hi) // 2
        tours, delay = attempt(mid)
        if delay <= delay_bound_s:
            hi = mid
            best = (mid, tours, delay)
        else:
            lo = mid + 1
    k, tours, delay = best
    if k != hi:
        tours, delay = attempt(hi)
    return MinChargersResult(
        num_chargers=hi, achieved_delay_s=delay, tours=tours
    )
