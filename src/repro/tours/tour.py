"""The :class:`Tour` value type.

A tour is the ordered sequence of sojourn locations one MCV visits,
rooted at the depot: the vehicle leaves the depot, visits the stops in
order, and returns. Node *service weights* (charging durations) and
edge *travel times* together give the tour delay of Eqs. (4)–(5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, List, Mapping, Optional, Sequence

from repro.geometry.distcache import DistanceCache
from repro.geometry.point import Point

#: Pairwise distance lookup over node labels; ``None`` means the depot.
DistanceFn = Callable[[Hashable, Hashable], float]


@dataclass
class Tour:
    """One MCV's closed charging tour.

    Attributes:
        stops: ordered sojourn-location ids; the depot is implicit at
            both ends and never appears in ``stops``.
    """

    stops: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.stops)

    def __iter__(self):
        return iter(self.stops)

    def __contains__(self, node: int) -> bool:
        return node in self.stops

    def is_empty(self) -> bool:
        """Whether the MCV never leaves the depot."""
        return not self.stops

    def index_of(self, node: int) -> int:
        """Position of ``node`` in the visit order.

        Raises:
            ValueError: if the node is not on this tour.
        """
        return self.stops.index(node)

    def insert_after(self, anchor: Optional[int], node: int) -> int:
        """Insert ``node`` immediately after ``anchor``.

        ``anchor=None`` means "after the depot", i.e. the new first
        stop. Returns the index at which ``node`` now sits.

        Raises:
            ValueError: if ``node`` is already on the tour or the
                anchor is missing.
        """
        if node in self.stops:
            raise ValueError(f"node {node} is already on the tour")
        if anchor is None:
            self.stops.insert(0, node)
            return 0
        idx = self.stops.index(anchor) + 1
        self.stops.insert(idx, node)
        return idx

    def travel_length(
        self,
        positions: Mapping[int, Point],
        depot: Point,
        dist: Optional[DistanceFn] = None,
    ) -> float:
        """Total travel distance depot -> stops -> depot, in metres."""
        if not self.stops:
            return 0.0
        if dist is None:
            dist = DistanceCache(positions, depot)
        length = dist(None, self.stops[0])
        for a, b in zip(self.stops, self.stops[1:]):
            length += dist(a, b)
        length += dist(self.stops[-1], None)
        return length

    def copy(self) -> "Tour":
        return Tour(stops=list(self.stops))


def tour_delay(
    stops: Sequence[int],
    positions: Mapping[int, Point],
    depot: Point,
    speed_mps: float,
    service_time: Callable[[int], float],
    dist: Optional[DistanceFn] = None,
) -> float:
    """Delay of a closed tour: travel time plus per-stop service time.

    This is Eq. (5) with ``service_time(v) = τ(v)`` or Eq. (4) with the
    residual durations ``τ'(v)``.
    """
    if speed_mps <= 0:
        raise ValueError(f"speed must be positive, got {speed_mps}")
    if not stops:
        return 0.0
    tour = Tour(stops=list(stops))
    travel = tour.travel_length(positions, depot, dist) / speed_mps
    service = sum(service_time(v) for v in stops)
    return travel + service


def total_stops(tours: Iterable[Tour]) -> int:
    """Total number of sojourn stops across a fleet of tours."""
    return sum(len(t) for t in tours)
