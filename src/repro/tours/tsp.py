"""TSP tour constructions over sojourn locations.

The ``K``-optimal closed tour subroutine first builds a single closed
tour through all locations, then splits it. Four constructions are
provided; all return a *visit order* — a list of node ids beginning at
the depot sentinel's successor (the depot itself is handled by the
caller via :data:`DEPOT`):

* :func:`nearest_neighbor_tour` — O(n²), good average quality;
* :func:`greedy_edge_tour` — O(n² log n) greedy edge matching;
* :func:`double_mst_tour` — the classic 2-approximation (MST preorder);
* :func:`christofides_tour` — the 1.5-approximation via networkx's
  implementation (min-weight matching on odd-degree MST nodes).

:func:`build_tsp_order` is the front door: it injects the depot, runs
the chosen construction and rotates the cycle so the order starts just
after the depot.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence

import networkx as nx

from repro.geometry.distcache import DistanceCache
from repro.geometry.point import PointLike
from repro.tours.arrays import (
    dense_backend,
    greedy_edge_indices,
    nearest_neighbor_indices,
)

#: Sentinel id for the depot inside TSP constructions. Sensor ids are
#: non-negative integers, so the sentinel can never collide.
DEPOT: Hashable = "DEPOT"

_METHODS = ("nearest_neighbor", "greedy_edge", "double_mst", "christofides")

#: A pairwise distance lookup over node labels.
DistanceFn = Callable[[Hashable, Hashable], float]


def _distance_lookup(
    positions: Mapping[Hashable, PointLike],
    dist: Optional[DistanceFn] = None,
) -> DistanceFn:
    return dist if dist is not None else DistanceCache(positions)


def _translate_depot(dist: DistanceFn) -> DistanceFn:
    """Adapt a ``None``-is-depot lookup to the :data:`DEPOT` sentinel."""

    def inner(a: Hashable, b: Hashable) -> float:
        return dist(None if a == DEPOT else a, None if b == DEPOT else b)

    return inner


def nearest_neighbor_tour(
    nodes: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    start: Hashable,
    dist: Optional[DistanceFn] = None,
) -> List[Hashable]:
    """Nearest-neighbour construction starting from ``start``.

    Returns the full cycle order beginning with ``start``.
    """
    dist = _distance_lookup(positions, dist)
    remaining = set(nodes)
    remaining.discard(start)
    order = [start]
    current = start
    while remaining:
        nxt = min(remaining, key=lambda n: (dist(current, n), str(n)))
        order.append(nxt)
        remaining.remove(nxt)
        current = nxt
    return order


def greedy_edge_tour(
    nodes: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    start: Hashable,
    dist: Optional[DistanceFn] = None,
) -> List[Hashable]:
    """Greedy-edge construction: repeatedly add the globally shortest
    edge that keeps degrees ≤ 2 and forms no premature subcycle.

    Returns the cycle order rotated to begin with ``start``.
    """
    all_nodes = list(dict.fromkeys(list(nodes) + [start]))
    if len(all_nodes) == 1:
        return [start]
    if len(all_nodes) == 2:
        return [start, next(n for n in all_nodes if n != start)]
    dist = _distance_lookup(positions, dist)
    edges = sorted(
        (
            (dist(a, b), i, j)
            for i, a in enumerate(all_nodes)
            for j, b in enumerate(all_nodes)
            if i < j
        ),
    )
    degree = [0] * len(all_nodes)
    # Union-find over node indices to reject premature cycles.
    parent = list(range(len(all_nodes)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    adj: Dict[int, List[int]] = {i: [] for i in range(len(all_nodes))}
    added = 0
    for _, i, j in edges:
        if added == len(all_nodes) - 1:
            break
        if degree[i] >= 2 or degree[j] >= 2:
            continue
        ri, rj = find(i), find(j)
        if ri == rj:
            continue
        parent[ri] = rj
        degree[i] += 1
        degree[j] += 1
        adj[i].append(j)
        adj[j].append(i)
        added += 1
    # Close the Hamiltonian path: exactly two endpoints have degree 1.
    endpoints = [i for i in range(len(all_nodes)) if degree[i] == 1]
    assert len(endpoints) == 2, "greedy edge construction left a broken path"
    adj[endpoints[0]].append(endpoints[1])
    adj[endpoints[1]].append(endpoints[0])
    # Walk the cycle.
    start_idx = all_nodes.index(start)
    order_idx = [start_idx]
    prev = None
    current = start_idx
    while True:
        nxt = next(n for n in adj[current] if n != prev)
        if nxt == start_idx:
            break
        order_idx.append(nxt)
        prev, current = current, nxt
    return [all_nodes[i] for i in order_idx]


def _complete_graph(
    nodes: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    dist: Optional[DistanceFn] = None,
) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    dist = _distance_lookup(positions, dist)
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            graph.add_edge(a, b, weight=dist(a, b))
    return graph


def double_mst_tour(
    nodes: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    start: Hashable,
    dist: Optional[DistanceFn] = None,
) -> List[Hashable]:
    """The MST-doubling 2-approximation: preorder walk of a minimum
    spanning tree rooted at ``start``.

    ``dist`` is accepted for interface uniformity but unused: the MST
    runs on a vectorised dense matrix, not pairwise lookups.

    The MST is computed with scipy's sparse-graph routine on the dense
    distance matrix — O(n²) memory but far faster than building a
    complete ``networkx`` graph for the hundreds-of-nodes instances the
    simulator produces.
    """
    all_nodes = list(dict.fromkeys(list(nodes) + [start]))
    if len(all_nodes) <= 2:
        return all_nodes if all_nodes[0] == start else all_nodes[::-1]
    import numpy as np
    from scipy.sparse.csgraph import minimum_spanning_tree as _scipy_mst

    coords = np.asarray(
        [(positions[n][0], positions[n][1]) for n in all_nodes], dtype=float
    )
    deltas = coords[:, None, :] - coords[None, :, :]
    dist = np.sqrt((deltas**2).sum(axis=2))
    mst_matrix = _scipy_mst(dist).tocoo()
    mst = nx.Graph()
    mst.add_nodes_from(range(len(all_nodes)))
    for i, j in zip(mst_matrix.row, mst_matrix.col):
        mst.add_edge(int(i), int(j))
    order_idx = nx.dfs_preorder_nodes(mst, source=all_nodes.index(start))
    return [all_nodes[i] for i in order_idx]


def christofides_tour(
    nodes: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    start: Hashable,
    dist: Optional[DistanceFn] = None,
) -> List[Hashable]:
    """Christofides' 1.5-approximation (networkx implementation),
    rotated to begin with ``start``.

    Falls back to :func:`double_mst_tour` for instances too small for
    the matching step.
    """
    all_nodes = list(dict.fromkeys(list(nodes) + [start]))
    if len(all_nodes) <= 3:
        return double_mst_tour(nodes, positions, start)
    cycle = nx.approximation.christofides(
        _complete_graph(all_nodes, positions, dist)
    )
    # networkx returns a closed walk with the first node repeated last.
    order = cycle[:-1]
    pivot = order.index(start)
    return order[pivot:] + order[:pivot]


def build_tsp_order(
    nodes: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    method: str = "christofides",
    dist: Optional[DistanceFn] = None,
) -> List[Hashable]:
    """Build a closed tour through ``nodes`` rooted at the depot.

    The depot joins the instance as the sentinel :data:`DEPOT`; the
    returned order lists only the real nodes, in visit order starting
    with the first node after leaving the depot.

    ``dist`` uses the schedule-layer convention (``None`` = depot); it
    is translated to the :data:`DEPOT` sentinel internally.

    Raises:
        ValueError: on an unknown method.
    """
    if method not in _METHODS:
        raise ValueError(
            f"unknown TSP method {method!r}; expected one of {_METHODS}"
        )
    node_list = list(nodes)
    if not node_list:
        return []
    if len(node_list) == 1:
        return node_list
    pos: Dict[Hashable, PointLike] = {n: positions[n] for n in node_list}
    pos[DEPOT] = depot
    if method in ("nearest_neighbor", "greedy_edge"):
        # Array fast path: the codec's index space (real nodes in
        # positional order, depot last) coincides with the legacy
        # ``node_list + [DEPOT]`` enumeration, so edge tie-breaks and
        # nearest-neighbour scans resolve to the identical tour.
        backend = dense_backend(dist, node_list)
        if backend is not None:
            kernel = {
                "nearest_neighbor": nearest_neighbor_indices,
                "greedy_edge": greedy_edge_indices,
            }[method]
            return backend.codec.decode(kernel(backend))
    inner = None if dist is None else _translate_depot(dist)
    builder = {
        "nearest_neighbor": nearest_neighbor_tour,
        "greedy_edge": greedy_edge_tour,
        "double_mst": double_mst_tour,
        "christofides": christofides_tour,
    }[method]
    cycle = builder(node_list + [DEPOT], pos, DEPOT, inner)
    assert cycle[0] == DEPOT
    return cycle[1:]
