"""Local-search improvement of closed tours.

2-opt and Or-opt over a depot-rooted cycle. Both operate on the visit
*order* (the depot stays fixed at the boundary) and only shorten travel
— node service times are order-invariant sums, so shorter travel is
strictly better for every delay objective in this library.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Mapping, Optional, Sequence

from repro.geometry.distcache import DistanceCache
from repro.geometry.point import PointLike
from repro.tours.arrays import dense_backend, or_opt_indices, two_opt_indices

#: Pairwise distance lookup over node labels; ``None`` means the depot.
DistanceFn = Callable[[Hashable, Hashable], float]


def _dist_fn(
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    dist: Optional[DistanceFn] = None,
) -> DistanceFn:
    return dist if dist is not None else DistanceCache(positions, depot)


def _cycle_length(order: Sequence[Hashable], dist) -> float:
    if not order:
        return 0.0
    total = dist(None, order[0])
    for a, b in zip(order, order[1:]):
        total += dist(a, b)
    total += dist(order[-1], None)
    return total


def two_opt(
    order: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    max_rounds: int = 30,
    min_gain: float = 1e-9,
    dist: Optional[DistanceFn] = None,
) -> List[Hashable]:
    """First-improvement 2-opt on a depot-rooted cycle.

    Repeatedly reverses segments ``order[i..j]`` while that shortens
    travel, up to ``max_rounds`` full passes.

    Returns a new order; the input is not mutated.
    """
    current = list(order)
    n = len(current)
    if n < 3:
        return current
    dist = _dist_fn(positions, depot, dist)
    backend = dense_backend(dist, current)
    if backend is not None:
        improved = two_opt_indices(
            backend.matrix,
            backend.codec.depot_index,
            backend.codec.encode(current),
            max_rounds=max_rounds,
            min_gain=min_gain,
        )
        return backend.codec.decode(improved)
    # Treat the cycle as depot(None), v0, ..., v_{n-1}, depot(None).
    for _ in range(max_rounds):
        improved = False
        for i in range(n - 1):
            before_i = current[i - 1] if i > 0 else None
            for j in range(i + 1, n):
                after_j = current[j + 1] if j + 1 < n else None
                removed = dist(before_i, current[i]) + dist(current[j], after_j)
                added = dist(before_i, current[j]) + dist(current[i], after_j)
                if removed - added > min_gain:
                    current[i : j + 1] = reversed(current[i : j + 1])
                    improved = True
        if not improved:
            break
    return current


def or_opt(
    order: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    segment_lengths: Sequence[int] = (1, 2, 3),
    max_rounds: int = 10,
    min_gain: float = 1e-9,
    dist: Optional[DistanceFn] = None,
) -> List[Hashable]:
    """Or-opt: relocate short segments to better positions in the cycle.

    Complements 2-opt (which cannot move a node without reversing).
    Returns a new order; the input is not mutated.
    """
    current = list(order)
    dist = _dist_fn(positions, depot, dist)
    if len(current) > 1:
        backend = dense_backend(dist, current)
        if backend is not None:
            moved = or_opt_indices(
                backend.matrix,
                backend.codec.depot_index,
                backend.codec.encode(current),
                segment_lengths=segment_lengths,
                max_rounds=max_rounds,
                min_gain=min_gain,
            )
            return backend.codec.decode(moved)
    for _ in range(max_rounds):
        improved = False
        for seg_len in segment_lengths:
            n = len(current)
            if n <= seg_len:
                continue
            i = 0
            while i + seg_len <= len(current):
                segment = current[i : i + seg_len]
                rest = current[:i] + current[i + seg_len :]
                before = current[i - 1] if i > 0 else None
                after = current[i + seg_len] if i + seg_len < len(current) else None
                removal_gain = (
                    dist(before, segment[0])
                    + dist(segment[-1], after)
                    - dist(before, after)
                )
                # Try reinsertion between every pair in the remainder.
                best_delta = -min_gain
                best_pos = None
                for pos in range(len(rest) + 1):
                    pb = rest[pos - 1] if pos > 0 else None
                    pa = rest[pos] if pos < len(rest) else None
                    insertion_cost = (
                        dist(pb, segment[0])
                        + dist(segment[-1], pa)
                        - dist(pb, pa)
                    )
                    delta = insertion_cost - removal_gain
                    if delta < best_delta:
                        best_delta = delta
                        best_pos = pos
                if best_pos is not None:
                    current = rest[:best_pos] + segment + rest[best_pos:]
                    improved = True
                else:
                    i += 1
        if not improved:
            break
    return current


def cycle_travel_length(
    order: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    dist: Optional[DistanceFn] = None,
) -> float:
    """Travel length of the depot-rooted cycle through ``order``."""
    return _cycle_length(order, _dist_fn(positions, depot, dist))
