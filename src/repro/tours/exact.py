"""Exact solvers for small tour instances.

Brute-force ground truth for testing and for certifying the
approximation quality of the production solvers:

* :func:`held_karp_tsp` — the classic O(n²·2ⁿ) dynamic program for the
  optimal depot-rooted closed tour (travel only; service times are
  order-invariant constants).
* :func:`exact_k_minmax` — the optimal min-max K-tour cover of a small
  node set: enumerate ordered set partitions implicitly by assigning
  nodes to vehicles (Kⁿ assignments), solving each vehicle's tour with
  Held–Karp, and memoising subset tours.

Usable up to ~10 nodes (assignment enumeration) / ~15 nodes (single
TSP); guarded with explicit limits so misuse fails loudly instead of
hanging.
"""

from __future__ import annotations

import itertools
import math
from functools import lru_cache
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.geometry.distcache import DistanceCache
from repro.geometry.point import PointLike

#: Hard limits: beyond these sizes the exact solvers refuse to run.
MAX_TSP_NODES = 15
MAX_PARTITION_NODES = 10

#: Pairwise distance lookup over node labels; ``None`` means the depot.
DistanceFn = Callable[[Hashable, Hashable], float]


def held_karp_tsp(
    nodes: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    dist: Optional[DistanceFn] = None,
) -> Tuple[List[Hashable], float]:
    """Optimal depot-rooted closed tour (travel length) by Held–Karp.

    Returns:
        ``(order, travel_length)`` — the optimal visit order (depot
        excluded) and the closed-tour travel length.

    Raises:
        ValueError: for more than :data:`MAX_TSP_NODES` nodes.
    """
    node_list = list(nodes)
    n = len(node_list)
    if n > MAX_TSP_NODES:
        raise ValueError(
            f"held_karp_tsp is limited to {MAX_TSP_NODES} nodes, got {n}"
        )
    if n == 0:
        return [], 0.0
    if dist is None:
        dist = DistanceCache(positions, depot)
    if n == 1:
        d = dist(None, node_list[0])
        return [node_list[0]], 2.0 * d

    dist_depot = [dist(None, v) for v in node_list]
    dist_m = [[dist(a, b) for b in node_list] for a in node_list]

    # dp[(mask, j)] = (cost of best path depot -> ... -> j over mask,
    #                  predecessor j')
    dp: Dict[Tuple[int, int], Tuple[float, int]] = {}
    for j in range(n):
        dp[(1 << j, j)] = (dist_depot[j], -1)
    for mask in range(1, 1 << n):
        for j in range(n):
            if not mask & (1 << j):
                continue
            if (mask, j) not in dp:
                continue
            base_cost, _ = dp[(mask, j)]
            for k in range(n):
                if mask & (1 << k):
                    continue
                new_mask = mask | (1 << k)
                cand = base_cost + dist_m[j][k]
                if (new_mask, k) not in dp or cand < dp[(new_mask, k)][0]:
                    dp[(new_mask, k)] = (cand, j)

    full = (1 << n) - 1
    best_cost = math.inf
    best_last = -1
    for j in range(n):
        cost = dp[(full, j)][0] + dist_depot[j]
        if cost < best_cost:
            best_cost = cost
            best_last = j

    # Reconstruct.
    order_idx: List[int] = []
    mask, j = full, best_last
    while j != -1:
        order_idx.append(j)
        _, prev = dp[(mask, j)]
        mask ^= 1 << j
        j = prev
    order_idx.reverse()
    return [node_list[i] for i in order_idx], best_cost


def exact_k_minmax(
    nodes: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    num_tours: int,
    speed_mps: float,
    service: Callable[[Hashable], float],
    dist: Optional[DistanceFn] = None,
) -> Tuple[List[List[Hashable]], float]:
    """Optimal min-max K-tour cover of a small node set.

    Enumerates every assignment of nodes to the ``K`` vehicles (order
    within a vehicle solved optimally by Held–Karp; symmetric
    assignments pruned by pinning the first node to vehicle 0).

    Returns:
        ``(tours, optimal_longest_delay)`` with exactly ``num_tours``
        visit lists.

    Raises:
        ValueError: for more than :data:`MAX_PARTITION_NODES` nodes or
            non-positive ``num_tours``.
    """
    node_list = list(nodes)
    n = len(node_list)
    if num_tours <= 0:
        raise ValueError(f"num_tours must be positive, got {num_tours}")
    if n > MAX_PARTITION_NODES:
        raise ValueError(
            f"exact_k_minmax is limited to {MAX_PARTITION_NODES} nodes, "
            f"got {n}"
        )
    if n == 0:
        return [[] for _ in range(num_tours)], 0.0
    if dist is None:
        dist = DistanceCache(positions, depot)

    index_of = {v: i for i, v in enumerate(node_list)}

    @lru_cache(maxsize=None)
    def subset_delay(mask: int) -> float:
        subset = [node_list[i] for i in range(n) if mask & (1 << i)]
        if not subset:
            return 0.0
        _, travel = held_karp_tsp(subset, positions, depot, dist)
        return travel / speed_mps + sum(service(v) for v in subset)

    best_value = math.inf
    best_assignment: Tuple[int, ...] = ()
    # Node 0 pinned to vehicle 0 (vehicles are interchangeable).
    for rest in itertools.product(range(num_tours), repeat=n - 1):
        assignment = (0,) + rest
        masks = [0] * num_tours
        for i, veh in enumerate(assignment):
            masks[veh] |= 1 << i
        value = max(subset_delay(m) for m in masks)
        if value < best_value:
            best_value = value
            best_assignment = assignment

    tours: List[List[Hashable]] = []
    masks = [0] * num_tours
    for i, veh in enumerate(best_assignment):
        masks[veh] |= 1 << i
    for m in masks:
        subset = [node_list[i] for i in range(n) if m & (1 << i)]
        if subset:
            order, _ = held_karp_tsp(subset, positions, depot, dist)
            tours.append(order)
        else:
            tours.append([])
    return tours, best_value
