"""Per-tour MCV energy budgets (beyond-the-paper extension).

The paper assumes "a mobile charger has sufficient energy for traveling
and sensor charging per charging tour" (Section III-B), citing Liang et
al. [13, 14] for the energy-constrained variant. This module supplies
that variant's machinery:

* :class:`MCVEnergyModel` — the vehicle's battery capacity and its two
  energy sinks: travel (J/m) and delivered charging energy (the
  charger draws ``η / transfer_efficiency`` watts while charging at
  rate ``η``).
* :func:`tour_energy` — total energy one closed tour consumes.
* :func:`split_tour_energy_constrained` — min-max splitting under both
  the delay bound *and* the battery capacity: the greedy packer closes
  a segment when either the delay bound or the energy budget would be
  exceeded. With an infinite budget it reduces exactly to the paper's
  splitting.
* :func:`minimum_chargers_energy_constrained` — fewest vehicles such
  that every tour fits the battery (and optionally a delay bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.geometry.distcache import DistanceCache
from repro.geometry.point import PointLike
from repro.tours.arrays import split_dual_ranges, tour_legs
from repro.tours.splitting import segment_cost
from repro.tours.tsp import build_tsp_order
from repro.tours.improve import or_opt, two_opt

#: Pairwise distance lookup over node labels; ``None`` means the depot.
DistanceFn = Callable[[Hashable, Hashable], float]


@dataclass(frozen=True)
class MCVEnergyModel:
    """Energy accounting of one mobile charging vehicle.

    Attributes:
        battery_j: usable battery capacity per tour, joules.
        travel_j_per_m: propulsion energy per metre.
        charge_rate_w: the charging rate ``η`` delivered to sensors.
        transfer_efficiency: fraction of drawn power that reaches the
            sensors; the vehicle drains ``η / transfer_efficiency``
            watts while charging.
    """

    battery_j: float
    travel_j_per_m: float = 10.0
    charge_rate_w: float = 2.0
    transfer_efficiency: float = 0.5

    def __post_init__(self) -> None:
        if self.battery_j <= 0:
            raise ValueError(f"battery must be positive: {self.battery_j}")
        if self.travel_j_per_m < 0:
            raise ValueError(
                f"travel energy must be non-negative: {self.travel_j_per_m}"
            )
        if self.charge_rate_w <= 0:
            raise ValueError(
                f"charge rate must be positive: {self.charge_rate_w}"
            )
        if not 0.0 < self.transfer_efficiency <= 1.0:
            raise ValueError(
                f"transfer efficiency must be in (0, 1]: "
                f"{self.transfer_efficiency}"
            )

    def travel_energy(self, distance_m: float) -> float:
        """Joules to drive ``distance_m`` metres."""
        if distance_m < 0:
            raise ValueError(f"distance must be non-negative: {distance_m}")
        return self.travel_j_per_m * distance_m

    def charging_energy(self, charge_seconds: float) -> float:
        """Joules drained while the charger runs for ``charge_seconds``."""
        if charge_seconds < 0:
            raise ValueError(
                f"charge time must be non-negative: {charge_seconds}"
            )
        return (
            self.charge_rate_w / self.transfer_efficiency * charge_seconds
        )


def tour_energy(
    segment: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    model: MCVEnergyModel,
    service: Callable[[Hashable], float],
    dist: Optional[DistanceFn] = None,
) -> float:
    """Energy one closed tour depot -> segment -> depot consumes."""
    if not segment:
        return 0.0
    if dist is None:
        dist = DistanceCache(positions, depot)
    travel = dist(None, segment[0])
    for a, b in zip(segment, segment[1:]):
        travel += dist(a, b)
    travel += dist(segment[-1], None)
    charging = sum(service(v) for v in segment)
    return model.travel_energy(travel) + model.charging_energy(charging)


def _greedy_split_dual(
    order: Sequence[Hashable],
    delay_bound_s: float,
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    speed_mps: float,
    service: Callable[[Hashable], float],
    model: MCVEnergyModel,
    dist: Optional[DistanceFn] = None,
) -> Optional[List[List[Hashable]]]:
    """Greedy packing under both the delay bound and the battery.

    Returns ``None`` when some single node violates either constraint
    on its own.
    """
    if dist is None:
        dist = DistanceCache(positions, depot)
    segments: List[List[Hashable]] = []
    current: List[Hashable] = []
    open_cost = 0.0       # delay without the return leg
    open_travel = 0.0     # metres without the return leg
    open_charge = 0.0     # charging seconds
    last: Optional[Hashable] = None

    def fits(cost, travel_m, charge_s) -> bool:
        energy = model.travel_energy(travel_m) + model.charging_energy(
            charge_s
        )
        return cost <= delay_bound_s and energy <= model.battery_j

    for node in order:
        leg = dist(last, node)
        svc = service(node)
        closing = dist(node, None)
        candidate_cost = open_cost + leg / speed_mps + svc + closing / speed_mps
        candidate_travel = open_travel + leg + closing
        candidate_charge = open_charge + svc
        if current and not fits(
            candidate_cost, candidate_travel, candidate_charge
        ):
            segments.append(current)
            current = []
            open_cost = open_travel = open_charge = 0.0
            last = None
            leg = dist(None, node)
            candidate_cost = leg / speed_mps + svc + closing / speed_mps
            candidate_travel = leg + closing
            candidate_charge = svc
        if not current and not fits(
            candidate_cost, candidate_travel, candidate_charge
        ):
            return None
        current.append(node)
        open_cost += leg / speed_mps + svc
        open_travel += leg
        open_charge += svc
        last = node
    if current:
        segments.append(current)
    return segments


def split_tour_energy_constrained(
    order: Sequence[Hashable],
    num_tours: int,
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    speed_mps: float,
    service: Callable[[Hashable], float],
    model: MCVEnergyModel,
    dist: Optional[DistanceFn] = None,
) -> Tuple[Optional[List[List[Hashable]]], float]:
    """Best energy-feasible consecutive split into ≤ ``num_tours``.

    Binary-searches the delay bound exactly like the unconstrained
    splitter, with the battery as a hard side constraint on every
    candidate segment.

    Returns:
        ``(segments, achieved_delay)`` — ``segments`` is ``None`` when
        no energy-feasible split into ``num_tours`` tours exists (some
        node alone busts the battery, or the fleet is too small).
    """
    if num_tours <= 0:
        raise ValueError(f"num_tours must be positive, got {num_tours}")
    order = list(order)
    if not order:
        return [[] for _ in range(num_tours)], 0.0
    if dist is None:
        dist = DistanceCache(positions, depot)
    legs = tour_legs(dist, order, service)
    if legs is not None:
        # The legacy drain expression groups as (rate / eff) * seconds;
        # pre-dividing once keeps the product byte-identical.
        ranges, achieved = split_dual_ranges(
            legs,
            num_tours,
            speed_mps,
            model.travel_j_per_m,
            model.charge_rate_w / model.transfer_efficiency,
            model.battery_j,
        )
        if ranges is None:
            return None, achieved
        padded = [order[s:e] for s, e in ranges]
        padded.extend([] for _ in range(num_tours - len(padded)))
        return padded, achieved

    low = max(
        segment_cost([node], positions, depot, speed_mps, service, dist)
        for node in order
    )
    high = segment_cost(order, positions, depot, speed_mps, service, dist)

    def feasible(bound: float) -> Optional[List[List[Hashable]]]:
        slack = bound * (1.0 + 1e-12) + 1e-9
        segs = _greedy_split_dual(
            order, slack, positions, depot, speed_mps, service, model, dist
        )
        if segs is None or len(segs) > num_tours:
            return None
        return segs

    best = feasible(high)
    if best is None:
        return None, math.inf
    low_split = feasible(low)
    if low_split is not None:
        best = low_split
    else:
        for _ in range(100):
            if high - low <= 1e-9 * max(high, 1.0):
                break
            mid = (low + high) / 2.0
            segs = feasible(mid)
            if segs is None:
                low = mid
            else:
                high = mid
                best = segs
    achieved = max(
        segment_cost(seg, positions, depot, speed_mps, service, dist)
        for seg in best
        if seg
    )
    padded = [list(seg) for seg in best]
    padded.extend([] for _ in range(num_tours - len(padded)))
    return padded, achieved


def solve_k_minmax_energy_constrained(
    nodes: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    num_tours: int,
    speed_mps: float,
    service: Callable[[Hashable], float],
    model: MCVEnergyModel,
    tsp_method: str = "christofides",
    dist: Optional[DistanceFn] = None,
) -> Tuple[Optional[List[List[Hashable]]], float]:
    """Energy-feasible min-max K tours (backbone + constrained split)."""
    node_list = list(nodes)
    if not node_list:
        return [[] for _ in range(num_tours)], 0.0
    if dist is None:
        dist = DistanceCache(positions, depot)
    method = tsp_method
    if method == "christofides" and len(node_list) > 250:
        method = "greedy_edge"
    order = build_tsp_order(node_list, positions, depot, method=method, dist=dist)
    if 3 <= len(order) <= 600:
        order = two_opt(order, positions, depot, dist=dist)
        order = or_opt(order, positions, depot, dist=dist)
    return split_tour_energy_constrained(
        order, num_tours, positions, depot, speed_mps, service, model, dist
    )


def minimum_chargers_energy_constrained(
    nodes: Sequence[Hashable],
    positions: Mapping[Hashable, PointLike],
    depot: PointLike,
    speed_mps: float,
    service: Callable[[Hashable], float],
    model: MCVEnergyModel,
    delay_bound_s: float = math.inf,
    max_chargers: int = 128,
    dist: Optional[DistanceFn] = None,
) -> Tuple[Optional[int], Optional[List[List[Hashable]]]]:
    """Fewest vehicles whose tours all fit the battery (and bound).

    Returns:
        ``(K, tours)`` or ``(None, None)`` when even ``max_chargers``
        vehicles cannot satisfy the constraints (e.g. a single node's
        round trip alone exceeds the battery).
    """
    node_list = list(nodes)
    if not node_list:
        return 0, []
    if dist is None:
        dist = DistanceCache(positions, depot)
    for node in node_list:
        if (
            tour_energy([node], positions, depot, model, service, dist)
            > model.battery_j
            or segment_cost(
                [node], positions, depot, speed_mps, service, dist
            )
            > delay_bound_s
        ):
            return None, None
    def attempt(k: int):
        tours, achieved = solve_k_minmax_energy_constrained(
            node_list, positions, depot, k, speed_mps, service, model,
            dist=dist,
        )
        if tours is not None and achieved <= delay_bound_s:
            return tours
        return None

    # Double until feasible (or the ceiling), then binary-search the
    # minimum inside (hi/2, hi].
    hi = 1
    tours = attempt(hi)
    while tours is None and hi < max_chargers:
        hi = min(hi * 2, max_chargers)
        tours = attempt(hi)
    if tours is None:
        return None, None
    lo = hi // 2 + 1 if hi > 1 else 1
    best_k, best_tours = hi, tours
    while lo < best_k:
        mid = (lo + best_k) // 2
        mid_tours = attempt(mid)
        if mid_tours is not None:
            best_k, best_tours = mid, mid_tours
        else:
            lo = mid + 1
    return best_k, best_tours
