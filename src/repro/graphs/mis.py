"""Greedy maximal independent sets with pluggable selection order.

Algorithm 1 computes two maximal independent sets: ``S_I`` on the
charging graph ``G_c`` (candidate sojourn locations — by maximality
their disks cover all of ``V_s``) and ``V'_H`` on the auxiliary graph
``H`` (a conflict-free core). The paper does not prescribe a particular
MIS; any maximal independent set satisfies the analysis. We implement
the classic sequential greedy with three selection strategies so their
effect can be measured (see ``benchmarks/test_ablation_mis.py``):

* ``"min_degree"`` — pick the lowest-degree remaining node; tends to
  produce large independent sets (good coverage granularity).
* ``"lexicographic"`` — ascending node id; deterministic and fast.
* ``"random"`` — uniformly random permutation (seeded).
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Set

import networkx as nx
import numpy as np

_STRATEGIES = ("min_degree", "lexicographic", "random")


def maximal_independent_set(
    graph: nx.Graph,
    strategy: str = "min_degree",
    seed: int = 0,
) -> List[int]:
    """Compute a maximal independent set of ``graph``.

    Args:
        graph: any undirected graph; isolated nodes are always chosen.
        strategy: one of ``"min_degree"``, ``"lexicographic"``,
            ``"random"``.
        seed: RNG seed for the ``"random"`` strategy.

    Returns:
        The chosen nodes, sorted ascending.

    Raises:
        ValueError: on an unknown strategy.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(
            f"unknown MIS strategy {strategy!r}; expected one of {_STRATEGIES}"
        )
    if strategy == "min_degree":
        return _greedy_min_degree(graph)
    if strategy == "lexicographic":
        order = sorted(graph.nodes)
    else:
        rng = np.random.default_rng(seed)
        order = list(graph.nodes)
        rng.shuffle(order)
    return _greedy_in_order(graph, order)


def _greedy_in_order(graph: nx.Graph, order: Iterable[int]) -> List[int]:
    chosen: List[int] = []
    blocked: Set[int] = set()
    for node in order:
        if node in blocked:
            continue
        chosen.append(node)
        blocked.add(node)
        blocked.update(graph.neighbors(node))
    return sorted(chosen)


def _greedy_min_degree(graph: nx.Graph) -> List[int]:
    """Greedy MIS selecting the minimum-residual-degree node each step.

    Implemented with a lazy heap: entries are re-pushed when their
    degree snapshot is stale, giving O(m log n) overall.
    """
    degree = {node: graph.degree(node) for node in graph.nodes}
    heap = [(deg, node) for node, deg in degree.items()]
    heapq.heapify(heap)
    removed: Set[int] = set()
    chosen: List[int] = []
    while heap:
        deg, node = heapq.heappop(heap)
        if node in removed:
            continue
        if deg != degree[node]:
            heapq.heappush(heap, (degree[node], node))
            continue
        chosen.append(node)
        removed.add(node)
        dropped = [nbr for nbr in graph.neighbors(node) if nbr not in removed]
        removed.update(dropped)
        # Shrink the residual degrees of second-hop neighbours.
        for gone in dropped:
            for nbr in graph.neighbors(gone):
                if nbr not in removed:
                    degree[nbr] -= 1
                    heapq.heappush(heap, (degree[nbr], nbr))
    return sorted(chosen)


def is_independent_set(graph: nx.Graph, nodes: Iterable[int]) -> bool:
    """Whether ``nodes`` is an independent set of ``graph``."""
    node_set = set(nodes)
    if not node_set <= set(graph.nodes):
        return False
    return not any(
        graph.has_edge(u, v) for u in node_set for v in graph.neighbors(u)
        if v in node_set
    )


def is_maximal_independent_set(graph: nx.Graph, nodes: Iterable[int]) -> bool:
    """Whether ``nodes`` is independent *and* maximal (no node outside
    the set could be added without breaking independence)."""
    node_set = set(nodes)
    if not is_independent_set(graph, node_set):
        return False
    for node in graph.nodes:
        if node in node_set:
            continue
        if not any(nbr in node_set for nbr in graph.neighbors(node)):
            return False
    return True
