"""The charging graph ``G_c``.

Section IV constructs ``G_c = (V_s, E)`` over the to-be-charged sensors
with an edge wherever two sensors are within the charging radius ``γ``
of each other — a unit-disk graph. Node positions are attached as node
attributes so downstream code can stay graph-centric.

Construction uses the grid spatial index, so it is
O(n · average-neighbourhood) instead of O(n²).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

import networkx as nx

from repro.geometry.grid_index import GridIndex
from repro.geometry.point import Point


def build_charging_graph(
    positions: Mapping[int, Point],
    radius_m: float,
    nodes: Optional[Iterable[int]] = None,
) -> nx.Graph:
    """Build the unit-disk charging graph.

    Args:
        positions: sensor id -> position for at least every node in
            ``nodes``.
        radius_m: the charging radius ``γ``; the edge rule is
            ``d(u, v) <= γ`` (boundary inclusive, matching ``N_c``).
        nodes: the to-be-charged subset ``V_s``; defaults to every key
            of ``positions``.

    Returns:
        ``networkx.Graph`` whose nodes carry a ``pos`` attribute and
        whose edges carry the Euclidean ``weight``.
    """
    if radius_m <= 0:
        raise ValueError(f"charging radius must be positive, got {radius_m}")
    node_list = sorted(positions) if nodes is None else sorted(nodes)
    graph = nx.Graph()
    for node in node_list:
        graph.add_node(node, pos=positions[node])
    index = GridIndex({n: positions[n] for n in node_list}, cell_size=radius_m)
    # One vectorised neighbourhood query for all nodes. Membership is
    # identical to per-node neighbors_of() scans (same hypot, same
    # inclusive boundary — tests/test_graphs_unit_disk.py pins the
    # parity), and edge weights still come from Point.distance_to, so
    # the produced graph is byte-identical to the loop construction.
    rows = index.within_bulk([positions[n] for n in node_list], radius_m)
    for node, row in zip(node_list, rows):
        p = positions[node]
        for other in row:
            if other > node:
                graph.add_edge(
                    node, other, weight=p.distance_to(positions[other])
                )
    return graph
