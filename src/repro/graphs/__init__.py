"""Graph machinery of Algorithm 1.

* :mod:`repro.graphs.unit_disk` — the charging graph ``G_c``: an edge
  joins two to-be-charged sensors within the charging radius ``γ``.
* :mod:`repro.graphs.mis` — greedy maximal-independent-set algorithms
  with pluggable tie-breaking (used twice in Algorithm 1, for ``S_I``
  and for ``V'_H``).
* :mod:`repro.graphs.coverage` — charging-disk coverage sets
  ``N_c⁺(v)`` and coverage checks.
* :mod:`repro.graphs.auxiliary` — the conflict graph ``H`` over ``S_I``
  whose edges mark sojourn-location pairs with intersecting disks.
"""

from repro.graphs.analysis import (
    disk_occupancy,
    load_factor,
    mean_disk_occupancy,
    structure_report,
)
from repro.graphs.auxiliary import auxiliary_max_degree, build_auxiliary_graph
from repro.graphs.coverage import (
    coverage_sets,
    covered_by,
    covers_all,
    uncovered,
)
from repro.graphs.mis import (
    is_independent_set,
    is_maximal_independent_set,
    maximal_independent_set,
)
from repro.graphs.unit_disk import build_charging_graph

__all__ = [
    "auxiliary_max_degree",
    "build_auxiliary_graph",
    "build_charging_graph",
    "disk_occupancy",
    "load_factor",
    "mean_disk_occupancy",
    "structure_report",
    "coverage_sets",
    "covered_by",
    "covers_all",
    "is_independent_set",
    "is_maximal_independent_set",
    "maximal_independent_set",
    "uncovered",
]
