"""The auxiliary conflict graph ``H = (S_I, E_H)``.

An edge ``(u, v)`` of ``H`` marks two candidate sojourn locations whose
charging disks intersect — ``N_c⁺(u) ∩ N_c⁺(v) ≠ ∅`` — i.e. two MCVs
sojourning there with overlapping time intervals would charge some
sensor twice. Because ``S_I`` is independent in ``G_c``, every edge of
``H`` joins locations with ``γ < d(u, v)``, and a shared covered sensor
forces ``d(u, v) ≤ 2γ`` by the triangle inequality, so the paper's
characterisation "strictly larger than γ but less than 2γ" holds.

Lemma 2 bounds the maximum degree ``Δ_H ≤ ⌈8π⌉``; an MIS ``V'_H`` of
``H`` is therefore a large conflict-free core.

We build edges from the *exact* disk-intersection test on the coverage
sets rather than the distance proxy: ``d ≤ 2γ`` is necessary but not
sufficient (the lens between two disks may contain no sensor), and the
paper's definition is set-intersection.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping

import networkx as nx

from repro.geometry.grid_index import GridIndex
from repro.geometry.point import Point


def build_auxiliary_graph(
    sojourn_candidates: Iterable[int],
    coverage: Mapping[int, FrozenSet[int]],
    positions: Mapping[int, Point],
    radius_m: float,
) -> nx.Graph:
    """Build ``H`` over the candidate sojourn locations.

    Args:
        sojourn_candidates: the MIS ``S_I`` of the charging graph.
        coverage: ``N_c⁺(v)`` per candidate (from
            :func:`repro.graphs.coverage.coverage_sets`).
        positions: id -> position (used to prune candidate pairs to
            those within ``2γ`` before the exact set test).
        radius_m: the charging radius ``γ``.

    Returns:
        ``networkx.Graph`` with an edge wherever two candidates' disks
        share at least one sensor; edges carry the Euclidean
        ``weight``.
    """
    if radius_m <= 0:
        raise ValueError(f"charging radius must be positive, got {radius_m}")
    candidates = sorted(sojourn_candidates)
    graph = nx.Graph()
    graph.add_nodes_from(candidates)
    index = GridIndex({c: positions[c] for c in candidates}, cell_size=radius_m)
    for cand in candidates:
        # Disk intersection requires centre distance <= 2γ.
        for other in index.neighbors_of(cand, 2.0 * radius_m):
            if other > cand and coverage[cand] & coverage[other]:
                graph.add_edge(
                    cand,
                    other,
                    weight=positions[cand].distance_to(positions[other]),
                )
    return graph


def auxiliary_max_degree(aux_graph: nx.Graph) -> int:
    """``Δ_H`` — the maximum degree of the auxiliary graph.

    Appears in the approximation ratio (Theorem 1); Lemma 2 proves it
    is at most ``⌈8π⌉ = 26`` for any instance.
    """
    if aux_graph.number_of_nodes() == 0:
        return 0
    return max(dict(aux_graph.degree).values())


def conflict_free_components(
    aux_graph: nx.Graph, chosen: Iterable[int]
) -> Dict[int, int]:
    """Map each chosen node to a conflict-component id.

    Two chosen sojourn locations in different components can never
    overcharge a shared sensor regardless of timing; useful for
    diagnostics and for the validator's fast path.
    """
    chosen_set = set(chosen)
    sub = aux_graph.subgraph(chosen_set)
    component_of: Dict[int, int] = {}
    for comp_id, comp in enumerate(nx.connected_components(sub)):
        for node in comp:
            component_of[node] = comp_id
    return component_of
