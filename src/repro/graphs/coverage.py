"""Charging-disk coverage sets ``N_c⁺(v)``.

When an MCV sojourns at sensor ``v`` it charges every sensor within the
charging radius: ``N_c⁺(v) = {v} ∪ {u : d(u, v) ≤ γ}``. These coverage
sets drive Algorithm 1 throughout — the auxiliary graph's edges are
disk intersections, residual charge durations exclude already-covered
sensors, and a feasible solution must cover all of ``V_s``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set

from repro.geometry.grid_index import GridIndex
from repro.geometry.point import Point


def coverage_sets(
    candidates: Iterable[int],
    positions: Mapping[int, Point],
    radius_m: float,
    targets: Optional[Iterable[int]] = None,
) -> Dict[int, FrozenSet[int]]:
    """``N_c⁺(v)`` for every candidate sojourn location ``v``.

    Args:
        candidates: sojourn-location ids (a subset of the sensors).
        positions: id -> position for all sensors involved.
        radius_m: the charging radius ``γ``.
        targets: the sensor population that can be covered; defaults to
            every key of ``positions``. A candidate always covers
            itself even if absent from ``targets``.

    Returns:
        Mapping from candidate id to the frozen set of covered sensor
        ids (including the candidate itself).
    """
    if radius_m <= 0:
        raise ValueError(f"charging radius must be positive, got {radius_m}")
    target_ids = set(positions) if targets is None else set(targets)
    index = GridIndex(
        {t: positions[t] for t in sorted(target_ids)}, cell_size=radius_m
    )
    # One vectorised bulk query for all candidates; membership is
    # identical to per-candidate index.within() calls (same hypot, same
    # inclusive boundary), which tests/test_coverage_vectorised.py pins.
    cand_list = list(candidates)
    rows = index.within_bulk(
        [positions[cand] for cand in cand_list], radius_m
    )
    result: Dict[int, FrozenSet[int]] = {}
    for cand, row in zip(cand_list, rows):
        covered = set(row)
        covered.add(cand)
        result[cand] = frozenset(covered)
    return result


def covered_by(
    chosen: Iterable[int], coverage: Mapping[int, FrozenSet[int]]
) -> Set[int]:
    """Union of the coverage sets of the ``chosen`` sojourn locations."""
    covered: Set[int] = set()
    for node in chosen:
        covered |= coverage[node]
    return covered


def covers_all(
    chosen: Iterable[int],
    coverage: Mapping[int, FrozenSet[int]],
    required: Iterable[int],
) -> bool:
    """Whether the chosen sojourn locations jointly cover ``required``."""
    return set(required) <= covered_by(chosen, coverage)


def uncovered(
    chosen: Iterable[int],
    coverage: Mapping[int, FrozenSet[int]],
    required: Iterable[int],
) -> Set[int]:
    """Sensors in ``required`` not covered by the chosen locations."""
    return set(required) - covered_by(chosen, coverage)
