"""Instance analytics: the structural quantities behind the results.

The paper's evaluation regimes are governed by a handful of structural
numbers — how many sensors share a charging disk, how dense the
conflict graph is, and whether the network's recharge demand exceeds
the fleet's service capacity. This module computes them directly so a
user can *predict* which regime an instance is in before simulating:

* :func:`disk_occupancy` — per-sensor count of requesting sensors in
  its charging disk; the multi-node parallelism factor.
* :func:`structure_report` — |S_I|, |V'_H|, Δ_H, conflict-graph
  density for a request set.
* :func:`load_factor` — total recharge demand (W) over one-to-one
  service capacity; > 1 predicts baseline divergence (the paper's
  large-`n` regime), and dividing by the mean occupancy approximates
  the multi-node load factor governing ``Appro``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.energy.charging import ChargerSpec
from repro.energy.consumption import RadioModel, sensor_power_draw
from repro.geometry.grid_index import GridIndex
from repro.graphs.auxiliary import auxiliary_max_degree, build_auxiliary_graph
from repro.graphs.coverage import coverage_sets
from repro.graphs.mis import maximal_independent_set
from repro.graphs.unit_disk import build_charging_graph
from repro.network.routing import build_routing_tree, relay_loads_bps
from repro.network.topology import WRSN


def disk_occupancy(
    network: WRSN,
    request_ids: Sequence[int],
    radius_m: float,
) -> Dict[int, int]:
    """For each requested sensor: how many requested sensors (itself
    included) lie within its charging disk."""
    requests = sorted(set(request_ids))
    index = GridIndex(
        {sid: network.position_of(sid) for sid in requests},
        cell_size=radius_m,
    )
    return {
        sid: len(index.within(network.position_of(sid), radius_m))
        for sid in requests
    }


def mean_disk_occupancy(
    network: WRSN, request_ids: Sequence[int], radius_m: float
) -> float:
    """Average multi-node parallelism of a request set (≥ 1)."""
    occupancy = disk_occupancy(network, request_ids, radius_m)
    if not occupancy:
        return 0.0
    return sum(occupancy.values()) / len(occupancy)


@dataclass(frozen=True)
class StructureReport:
    """Structural summary of one scheduling instance."""

    num_requests: int
    charging_graph_edges: int
    sojourn_candidates: int        # |S_I|
    conflict_free_core: int        # |V'_H|
    conflict_edges: int            # |E_H|
    delta_h: int
    mean_occupancy: float

    @property
    def stops_per_sensor(self) -> float:
        """Sojourn economy: below 1 means disk sharing is happening."""
        if self.num_requests == 0:
            return 0.0
        return self.sojourn_candidates / self.num_requests


def structure_report(
    network: WRSN,
    request_ids: Sequence[int],
    charger: Optional[ChargerSpec] = None,
    mis_strategy: str = "min_degree",
) -> StructureReport:
    """Compute the Algorithm-1 structures for a request set, without
    scheduling."""
    spec = charger if charger is not None else ChargerSpec()
    requests = sorted(set(request_ids))
    positions = network.positions()
    graph = build_charging_graph(
        positions, spec.charge_radius_m, nodes=requests
    )
    candidates = maximal_independent_set(graph, strategy=mis_strategy)
    coverage = coverage_sets(
        candidates, positions, spec.charge_radius_m, targets=requests
    )
    aux = build_auxiliary_graph(
        candidates, coverage, positions, spec.charge_radius_m
    )
    core = maximal_independent_set(aux, strategy=mis_strategy)
    return StructureReport(
        num_requests=len(requests),
        charging_graph_edges=graph.number_of_edges(),
        sojourn_candidates=len(candidates),
        conflict_free_core=len(core),
        conflict_edges=aux.number_of_edges(),
        delta_h=auxiliary_max_degree(aux),
        mean_occupancy=mean_disk_occupancy(
            network, requests, spec.charge_radius_m
        ),
    )


@dataclass(frozen=True)
class LoadReport:
    """Demand-vs-capacity analysis of a whole network."""

    total_demand_w: float
    one_to_one_capacity_w: float
    load_factor: float
    hottest_sensor_w: float
    hottest_lifetime_h: float

    @property
    def predicts_baseline_divergence(self) -> bool:
        """Demand above one-to-one capacity ⇒ one-to-one schedulers
        cannot keep up over a long horizon."""
        return self.load_factor > 1.0


def load_factor(
    network: WRSN,
    num_chargers: int,
    charger: Optional[ChargerSpec] = None,
    radio: Optional[RadioModel] = None,
    duty_factor: float = 0.9,
) -> LoadReport:
    """Estimate the network's recharge demand vs fleet capacity.

    Demand is the steady-state total power draw (routing-tree relay
    loads included). One-to-one capacity is ``K · η`` derated by
    ``duty_factor`` for travel overhead. ``load_factor`` > 1 predicts
    that one-to-one baselines diverge (the paper's large-``n``
    regime); ``load_factor / mean_occupancy`` < 1 predicts ``Appro``
    remains stable.

    Raises:
        ValueError: on non-positive ``num_chargers`` or a duty factor
            outside (0, 1].
    """
    if num_chargers <= 0:
        raise ValueError(f"num_chargers must be positive: {num_chargers}")
    if not 0.0 < duty_factor <= 1.0:
        raise ValueError(f"duty_factor must be in (0, 1]: {duty_factor}")
    spec = charger if charger is not None else ChargerSpec()
    model = radio if radio is not None else RadioModel()
    tree = build_routing_tree(network)
    relayed = relay_loads_bps(network, tree)
    draws = {
        s.id: sensor_power_draw(
            model, s.data_rate_bps, relayed[s.id],
            tree.next_hop_distance_m[s.id],
        )
        for s in network.sensors()
    }
    total = sum(draws.values())
    capacity = num_chargers * spec.charge_rate_w * duty_factor
    hottest_id = max(draws, key=draws.get) if draws else None
    hottest = draws.get(hottest_id, 0.0)
    hottest_life_h = (
        network.sensor(hottest_id).capacity_j / hottest / 3600.0
        if hottest_id is not None and hottest > 0
        else float("inf")
    )
    return LoadReport(
        total_demand_w=total,
        one_to_one_capacity_w=capacity,
        load_factor=total / capacity if capacity > 0 else float("inf"),
        hottest_sensor_w=hottest,
        hottest_lifetime_h=hottest_life_h,
    )
