"""Planner protocol, registry and the unified reporting surface.

The paper's algorithm and the four baselines historically returned two
different types — :class:`~repro.core.schedule.ChargingSchedule` for
multi-node planners and
:class:`~repro.baselines.common.BaselineSchedule` for one-to-one ones —
and every consumer (simulator, benchmark harness, CLI) dispatched on
the concrete type. The pipeline layer re-homes all of them as named
:class:`PlannerInfo` entries producing a :class:`PlannedSchedule`: a
transparent wrapper exposing the common reporting surface
(``longest_delay``, ``tour_delays``, ``sensor_finish_times``,
``covered_sensors``, ``validate``) while delegating everything else to
the wrapped schedule, so type-specific code keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Set,
)

from repro.core.validation import ScheduleViolation, validate_schedule
from repro.energy.charging import ChargerSpec
from repro.network.topology import WRSN
from repro.pipeline.context import PlanningContext


class Planner(Protocol):
    """The uniform planner call every registered algorithm satisfies."""

    def __call__(
        self,
        network: WRSN,
        request_ids: Sequence[int],
        num_chargers: int,
        charger: Optional[ChargerSpec] = None,
        lifetimes: Optional[Mapping[int, float]] = None,
        context: Optional[PlanningContext] = None,
        **kwargs: Any,
    ) -> Any:
        ...


@dataclass(frozen=True)
class PlannerInfo:
    """One registered planning algorithm.

    Attributes:
        name: registry key (also the CLI / bench display name).
        build: the uniform planner callable.
        multi_node: whether the planner charges multiple sensors per
            sojourn stop (produces a ``ChargingSchedule``).
        paper: whether the algorithm is one of the paper's five
            (``Appro`` plus the four benchmarks); extension planners
            are excluded from paper-comparison surfaces.
    """

    name: str
    build: Planner
    multi_node: bool
    paper: bool = True


_REGISTRY: Dict[str, PlannerInfo] = {}


def register_planner(info: PlannerInfo) -> PlannerInfo:
    """Add a planner to the registry.

    Raises:
        ValueError: on a duplicate name.
    """
    if info.name in _REGISTRY:
        raise ValueError(f"planner {info.name!r} is already registered")
    _REGISTRY[info.name] = info
    return info


def unregister_planner(name: str) -> PlannerInfo:
    """Remove a planner from the registry and return its info.

    Exists for test fixtures and plug-in teardown; the built-in
    planners are registered for the life of the process.

    Raises:
        KeyError: for unknown names, listing the known ones.
    """
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise KeyError(
            f"unknown planner {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def get_planner(name: str) -> PlannerInfo:
    """Look up a registered planner.

    Raises:
        KeyError: for unknown names, listing the known ones.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown planner {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def planner_names(paper_only: bool = False) -> List[str]:
    """Registered planner names, in registration order."""
    return [
        name
        for name, info in _REGISTRY.items()
        if info.paper or not paper_only
    ]


class PlannedSchedule:
    """A planner's result behind the unified reporting surface.

    Wraps either a ``ChargingSchedule`` or a ``BaselineSchedule``
    (``raw``); attribute access falls through to the wrapped object, so
    existing type-specific consumers (``io.schedule_to_dict``, the
    fault executor, schedule repair) keep working on ``raw`` — or on
    the wrapper itself, transparently.
    """

    def __init__(
        self,
        planner: str,
        raw: Any,
        multi_node: bool,
        context: Optional[PlanningContext] = None,
    ):
        self.planner = planner
        self.raw = raw
        self.multi_node = multi_node
        self.context = context

    # --- unified reporting surface -----------------------------------

    def longest_delay(self) -> float:
        """The objective: the longest tour delay, seconds."""
        return self.raw.longest_delay()

    def tour_delays(self) -> List[float]:
        """Per-MCV tour delay, seconds."""
        return self.raw.tour_delays()

    def sensor_finish_times(self) -> Dict[int, float]:
        """Charge-completion time per served sensor."""
        return self.raw.sensor_finish_times()

    def covered_sensors(self) -> Set[int]:
        """All sensors the schedule serves."""
        if self.multi_node:
            return set(self.raw.covered_sensors())
        return set(self.raw.visited_sensors())

    @property
    def num_tours(self) -> int:
        return self.raw.num_tours

    def validate(
        self, required_sensors: Sequence[int]
    ) -> List[ScheduleViolation]:
        """Feasibility violations against ``required_sensors``.

        Multi-node schedules run the full Definition 1 validator;
        one-to-one schedules can only violate coverage (each visit
        charges exactly one sensor at its own location). When the
        planning context is attached, the validator's conflict engine
        reuses its memoized per-sensor stop-group index
        (:meth:`~repro.pipeline.PlanningContext.sensor_stop_groups`)
        instead of re-inverting the coverage relation per call.
        """
        if self.multi_node:
            groups = None
            if self.context is not None:
                stops = self.raw.scheduled_stops()
                requests = set(self.context.requests)
                if all(s in requests for s in stops):
                    groups = self.context.sensor_stop_groups(stops)
            return validate_schedule(self.raw, required_sensors, groups)
        missing = sorted(set(required_sensors) - self.covered_sensors())
        return [
            ScheduleViolation(
                kind="coverage",
                detail=f"sensor {sid} is never visited",
                nodes=(sid,),
            )
            for sid in missing
        ]

    # --- transparency ------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # Only called when normal lookup fails: delegate to the
        # wrapped schedule so type-specific consumers keep working.
        if name == "raw":  # guard against recursion mid-construction
            raise AttributeError(name)
        return getattr(self.raw, name)

    def __repr__(self) -> str:
        return (
            f"PlannedSchedule(planner={self.planner!r}, "
            f"raw={type(self.raw).__name__}, "
            f"multi_node={self.multi_node})"
        )


def run_planner(
    name: str,
    network: WRSN,
    request_ids: Sequence[int],
    num_chargers: int,
    charger: Optional[ChargerSpec] = None,
    lifetimes: Optional[Mapping[int, float]] = None,
    context: Optional[PlanningContext] = None,
    **kwargs: Any,
) -> PlannedSchedule:
    """Run a registered planner through the unified pipeline.

    Builds a :class:`PlanningContext` when none is supplied (its lazy
    memos cost nothing until used, and its distance cache is shared per
    network), passes it to the planner and wraps the result.
    """
    info = get_planner(name)
    if context is None:
        context = PlanningContext(network, request_ids, charger)
    elif charger is not None and charger != context.charger:
        raise ValueError(
            "charger differs from the supplied context's ChargerSpec"
        )
    raw = info.build(
        network,
        request_ids,
        num_chargers,
        charger=context.charger,
        lifetimes=lifetimes,
        context=context,
        **kwargs,
    )
    return PlannedSchedule(
        planner=name, raw=raw, multi_node=info.multi_node, context=context
    )


__all__ = [
    "PlannedSchedule",
    "Planner",
    "PlannerInfo",
    "get_planner",
    "planner_names",
    "register_planner",
    "run_planner",
    "unregister_planner",
]
