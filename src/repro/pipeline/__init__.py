"""Unified planner pipeline.

One :class:`PlanningContext` per ``(WRSN, request set, ChargerSpec)``
memoizes everything the planners share — distances, the charging graph,
MIS results, coverage sets, the conflict graph, full-charge times and
min-max tour solutions — and the planner registry runs ``Appro`` and
every baseline through one uniform interface returning a
:class:`PlannedSchedule`.

Typical use::

    from repro.pipeline import PlanningContext, run_planner

    ctx = PlanningContext(network, requests)
    for name in planner_names(paper_only=True):
        result = run_planner(name, network, requests, k, context=ctx)
        print(name, result.longest_delay())
"""

from repro.pipeline.context import PlanningContext, shared_distance_cache
from repro.pipeline.planner import (
    PlannedSchedule,
    Planner,
    PlannerInfo,
    get_planner,
    planner_names,
    register_planner,
    run_planner,
    unregister_planner,
)
from repro.pipeline.snapshot import (
    ContextSnapshot,
    restore_context,
    snapshot_context,
)

# Importing the module registers the built-in planners.
from repro.pipeline import planners as _planners  # noqa: F401

__all__ = [
    "ContextSnapshot",
    "PlannedSchedule",
    "Planner",
    "PlannerInfo",
    "PlanningContext",
    "get_planner",
    "planner_names",
    "register_planner",
    "restore_context",
    "run_planner",
    "shared_distance_cache",
    "snapshot_context",
    "unregister_planner",
]
