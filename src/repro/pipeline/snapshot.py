"""Picklable snapshots of a warm :class:`PlanningContext`.

The batch service (:mod:`repro.serve`) ships planning work to worker
processes. A context warmed in one process is useless there unless its
memoized state can cross the pickle boundary — but a live
:class:`~repro.pipeline.context.PlanningContext` holds a reference to
the process-wide shared distance cache and to ``networkx`` graphs whose
adjacency iteration order must be preserved exactly for downstream MIS
passes to stay deterministic.

:func:`snapshot_context` therefore captures the memoized fields into a
plain-data :class:`ContextSnapshot` (graphs become explicit node/edge
lists in insertion order), and :func:`restore_context` rebuilds a
context around a network instance and re-injects every memo. A restored
context answers every query from its memos — byte-identical to the
warm original — and falls through to the ordinary lazy computations for
anything not captured.

The snapshot deliberately does *not* carry the network: the service
ships networks once per job group, and a snapshot must stay valid for
any structurally identical copy (e.g. one rebuilt from
:func:`repro.io.wrsn_from_dict` in a worker).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Tuple

import networkx as nx
import numpy as np

from repro.energy.charging import ChargerSpec
from repro.network.topology import WRSN
from repro.pipeline.context import PlanningContext
from repro.tours.arrays import NodeIndexCodec

#: (nodes in insertion order, edges as (u, v, attrs) in insertion
#: order) — enough to rebuild a graph with identical iteration order.
GraphData = Tuple[Tuple[Any, ...], Tuple[Tuple[Any, Any, Dict], ...]]


def _graph_to_data(graph: nx.Graph) -> GraphData:
    return (
        tuple(graph.nodes),
        tuple((u, v, dict(attrs)) for u, v, attrs in graph.edges(data=True)),
    )


def _graph_from_data(data: GraphData) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(data[0])
    for u, v, attrs in data[1]:
        graph.add_edge(u, v, **attrs)
    return graph


@dataclass
class ContextSnapshot:
    """Plain-data capture of a context's memoized state.

    Every field mirrors one memo of
    :class:`~repro.pipeline.context.PlanningContext`; all values are
    picklable built-ins (graphs stored as node/edge lists).
    """

    requests: Tuple[int, ...]
    charger: ChargerSpec
    charge_times: Dict[int, float] = field(default_factory=dict)
    charging_graph: Any = None  # Optional[GraphData]
    mis: Dict[Tuple[str, int], List[int]] = field(default_factory=dict)
    coverage: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    stop_groups: Dict[Tuple[int, ...], Dict[int, Tuple[int, ...]]] = field(
        default_factory=dict
    )
    aux: Dict[Tuple[str, int], GraphData] = field(default_factory=dict)
    core: Dict[Tuple[str, int], List[int]] = field(default_factory=dict)
    minmax: Dict[Any, Tuple[List[List[int]], float]] = field(
        default_factory=dict
    )
    #: Canonical label tuples whose index codecs were memoized; codecs
    #: are derived data, so only the keys ship and restore rebuilds.
    codecs: Tuple[Tuple[int, ...], ...] = ()
    #: Dense distance matrices per canonical label tuple (ndarrays —
    #: picklable, immutable, and byte-identical to a worker-side
    #: rebuild, so shipping them only skips the O(n^2) hypot pass).
    dense: Dict[Tuple[int, ...], np.ndarray] = field(default_factory=dict)


def snapshot_context(context: PlanningContext) -> ContextSnapshot:
    """Capture a context's memoized state into a picklable snapshot.

    Lazy memos that were never computed stay absent; restoring such a
    snapshot simply leaves those computations to happen on demand.
    """
    return ContextSnapshot(
        requests=context.requests,
        charger=context.charger,
        charge_times=dict(context._charge_times),
        charging_graph=(
            _graph_to_data(context._charging_graph)
            if context._charging_graph is not None
            else None
        ),
        mis={k: list(v) for k, v in context._mis.items()},
        coverage=dict(context._coverage),
        stop_groups={k: dict(v) for k, v in context._stop_groups.items()},
        aux={k: _graph_to_data(g) for k, g in context._aux.items()},
        core={k: list(v) for k, v in context._core.items()},
        minmax={
            k: ([list(t) for t in tours], delay)
            for k, (tours, delay) in context._minmax.items()
        },
        codecs=tuple(context._codecs.keys()),
        dense=dict(context._dense_matrices),
    )


def restore_context(
    snapshot: ContextSnapshot,
    network: WRSN,
    share_distances: bool = True,
) -> PlanningContext:
    """Rebuild a warm context from a snapshot around ``network``.

    Args:
        snapshot: a :func:`snapshot_context` capture.
        network: the WRSN the snapshot's workload lives on — the
            original instance or a structurally identical copy (same
            sensor ids, positions and residuals).
        share_distances: forwarded to :class:`PlanningContext`.

    Raises:
        ValueError: when the snapshot's request set names sensors the
            network does not have.
    """
    context = PlanningContext(
        network,
        snapshot.requests,
        charger=snapshot.charger,
        share_distances=share_distances,
    )
    context._charge_times.update(snapshot.charge_times)
    if snapshot.charging_graph is not None:
        context._charging_graph = _graph_from_data(snapshot.charging_graph)
    context._mis.update({k: list(v) for k, v in snapshot.mis.items()})
    context._coverage.update(snapshot.coverage)
    context._stop_groups.update(
        {k: dict(v) for k, v in snapshot.stop_groups.items()}
    )
    context._aux.update(
        {k: _graph_from_data(g) for k, g in snapshot.aux.items()}
    )
    context._core.update({k: list(v) for k, v in snapshot.core.items()})
    context._minmax.update(
        {
            k: ([list(t) for t in tours], delay)
            for k, (tours, delay) in snapshot.minmax.items()
        }
    )
    for key in snapshot.codecs:
        context._codecs.setdefault(key, NodeIndexCodec(key))
    for key, matrix in snapshot.dense.items():
        # Seed the shared cache first: it freezes the unpickled array
        # and is where the array kernels will actually look it up.
        context.distance.seed_dense(key, matrix)
        context._dense_matrices.setdefault(
            key, context.distance.dense_matrix(key)
        )
    return context


__all__ = ["ContextSnapshot", "restore_context", "snapshot_context"]
