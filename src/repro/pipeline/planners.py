"""The registered planners: ``Appro``, the paper's four benchmarks,
and the ``GreedyCover`` extension.

Each adapter normalises its algorithm's native signature to the
uniform :class:`~repro.pipeline.planner.Planner` call. Registration
order matters: it is the display order of every comparison surface
(``repro.sim.scenario.ALGORITHMS``, the CLI, the bench harness), so
the paper's five come first, extensions after.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from repro.baselines.aa import aa_schedule
from repro.baselines.common import BaselineSchedule
from repro.baselines.greedy_cover import greedy_cover_schedule
from repro.baselines.kedf import kedf_schedule
from repro.baselines.kminmax_baseline import kminmax_baseline_schedule
from repro.baselines.netwrap import netwrap_schedule
from repro.core.appro import appro_schedule
from repro.core.metaheuristic import metaheuristic_schedule
from repro.core.schedule import ChargingSchedule
from repro.energy.charging import ChargerSpec
from repro.network.topology import WRSN
from repro.pipeline.context import PlanningContext
from repro.pipeline.planner import PlannerInfo, register_planner


def _appro(
    network: WRSN,
    request_ids: Sequence[int],
    num_chargers: int,
    charger: Optional[ChargerSpec] = None,
    lifetimes: Optional[Mapping[int, float]] = None,
    context: Optional[PlanningContext] = None,
    **kwargs: Any,
) -> ChargingSchedule:
    # Appro schedules from charge deficits, not lifetimes.
    return appro_schedule(
        network,
        request_ids,
        num_chargers,
        charger=charger,
        context=context,
        **kwargs,
    )


def _kedf(
    network: WRSN,
    request_ids: Sequence[int],
    num_chargers: int,
    charger: Optional[ChargerSpec] = None,
    lifetimes: Optional[Mapping[int, float]] = None,
    context: Optional[PlanningContext] = None,
    **kwargs: Any,
) -> BaselineSchedule:
    return kedf_schedule(
        network,
        request_ids,
        num_chargers,
        charger=charger,
        lifetimes=lifetimes,
        context=context,
        **kwargs,
    )


def _netwrap(
    network: WRSN,
    request_ids: Sequence[int],
    num_chargers: int,
    charger: Optional[ChargerSpec] = None,
    lifetimes: Optional[Mapping[int, float]] = None,
    context: Optional[PlanningContext] = None,
    **kwargs: Any,
) -> BaselineSchedule:
    return netwrap_schedule(
        network,
        request_ids,
        num_chargers,
        charger=charger,
        lifetimes=lifetimes,
        context=context,
        **kwargs,
    )


def _aa(
    network: WRSN,
    request_ids: Sequence[int],
    num_chargers: int,
    charger: Optional[ChargerSpec] = None,
    lifetimes: Optional[Mapping[int, float]] = None,
    context: Optional[PlanningContext] = None,
    **kwargs: Any,
) -> BaselineSchedule:
    # AA clusters geometrically; lifetimes do not enter.
    kwargs.setdefault("seed", 0)
    return aa_schedule(
        network,
        request_ids,
        num_chargers,
        charger=charger,
        context=context,
        **kwargs,
    )


def _kminmax(
    network: WRSN,
    request_ids: Sequence[int],
    num_chargers: int,
    charger: Optional[ChargerSpec] = None,
    lifetimes: Optional[Mapping[int, float]] = None,
    context: Optional[PlanningContext] = None,
    **kwargs: Any,
) -> BaselineSchedule:
    return kminmax_baseline_schedule(
        network,
        request_ids,
        num_chargers,
        charger=charger,
        context=context,
        **kwargs,
    )


def _greedy_cover(
    network: WRSN,
    request_ids: Sequence[int],
    num_chargers: int,
    charger: Optional[ChargerSpec] = None,
    lifetimes: Optional[Mapping[int, float]] = None,
    context: Optional[PlanningContext] = None,
    **kwargs: Any,
) -> ChargingSchedule:
    return greedy_cover_schedule(
        network,
        request_ids,
        num_chargers,
        charger=charger,
        context=context,
        **kwargs,
    )


def _metaheuristic(
    network: WRSN,
    request_ids: Sequence[int],
    num_chargers: int,
    charger: Optional[ChargerSpec] = None,
    lifetimes: Optional[Mapping[int, float]] = None,
    context: Optional[PlanningContext] = None,
    **kwargs: Any,
) -> ChargingSchedule:
    # Anytime GA seeded from Appro; lifetimes do not enter (it keeps
    # Appro's deficit-driven coverage decisions and searches routing).
    kwargs.setdefault("seed", 0)
    return metaheuristic_schedule(
        network,
        request_ids,
        num_chargers,
        charger=charger,
        context=context,
        **kwargs,
    )


# The paper's five, in the paper's presentation order, then extensions.
register_planner(PlannerInfo(name="Appro", build=_appro, multi_node=True))
register_planner(PlannerInfo(name="K-EDF", build=_kedf, multi_node=False))
register_planner(PlannerInfo(name="NETWRAP", build=_netwrap, multi_node=False))
register_planner(PlannerInfo(name="AA", build=_aa, multi_node=False))
register_planner(
    PlannerInfo(name="K-minMax", build=_kminmax, multi_node=False)
)
register_planner(
    PlannerInfo(
        name="GreedyCover", build=_greedy_cover, multi_node=True, paper=False
    )
)
register_planner(
    PlannerInfo(
        name="Metaheuristic",
        build=_metaheuristic,
        multi_node=True,
        paper=False,
    )
)
