"""The :class:`PlanningContext` — memoized planning state.

Every planner over the same ``(WRSN, request set, ChargerSpec)`` triple
recomputes the same expensive structures: the pairwise distances, the
charging graph ``G_c``, the MIS of sojourn candidates, per-candidate
coverage sets ``N_c⁺(v)``, the auxiliary conflict graph ``H`` and its
conflict-free core, the Eq. (1) full-charge times, and the ``K``
min-max tour solutions. The context computes each of them lazily, once,
and hands the memoized result to whichever planner asks — so comparing
five algorithms on one workload (the bench/compare loops) or re-running
one algorithm with different ``K`` pays the construction cost once.

The distance cache is additionally shared *across* contexts built on
the same :class:`~repro.network.topology.WRSN` (keyed weakly, so
networks are collected normally): sensor positions never change between
simulation rounds, while residual energies — and hence request sets and
charge times — do. Each round's context therefore reuses every distance
computed by earlier rounds.

All cached values are produced by exactly the same functions the
un-contexted code paths call (``euclidean``, ``build_charging_graph``,
``maximal_independent_set``, ``coverage_sets`` semantics,
``build_auxiliary_graph``, ``solve_k_minmax_tours``), so schedules
built through a context are byte-identical to schedules built without
one.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

import networkx as nx
import numpy as np

from repro.energy.charging import ChargerSpec, full_charge_time
from repro.geometry.distcache import DistanceCache
from repro.geometry.grid_index import GridIndex
from repro.graphs.auxiliary import build_auxiliary_graph
from repro.graphs.mis import maximal_independent_set
from repro.graphs.unit_disk import build_charging_graph
from repro.network.topology import WRSN
from repro.tours.arrays import (
    NodeIndexCodec,
    canonical_labels,
    dense_backend,
)
from repro.tours.kminmax import (
    _CHRISTOFIDES_MAX_NODES,
    _IMPROVE_MAX_NODES,
    solve_k_minmax_tours,
)

#: Per-network shared distance caches. Positions are static for the
#: lifetime of a WRSN, so every context on the same network — across
#: simulation rounds, planners and ``K`` values — can share one cache.
_SHARED_DISTANCES: "WeakKeyDictionary[WRSN, DistanceCache]" = (
    WeakKeyDictionary()
)


def shared_distance_cache(network: WRSN) -> DistanceCache:
    """The process-wide distance cache for ``network`` (created once)."""
    cache = _SHARED_DISTANCES.get(network)
    if cache is None:
        cache = DistanceCache(network.positions(), network.depot.position)
        _SHARED_DISTANCES[network] = cache
    return cache


class PlanningContext:
    """Lazily-computed, memoized planning state for one workload.

    Args:
        network: the WRSN instance (positions, batteries, depot).
        request_ids: the to-be-charged set ``V_s``.
        charger: MCV parameters; the paper defaults when omitted.
        share_distances: reuse the per-network process-wide distance
            cache (on by default); disable for isolated measurements.

    Raises:
        ValueError: when a request id is absent from the network.
    """

    def __init__(
        self,
        network: WRSN,
        request_ids: Sequence[int],
        charger: Optional[ChargerSpec] = None,
        share_distances: bool = True,
    ):
        self.network = network
        self.requests: Tuple[int, ...] = tuple(sorted(set(request_ids)))
        unknown = [r for r in self.requests if r not in network]
        if unknown:
            raise ValueError(f"request ids not in the network: {unknown}")
        self.charger = charger if charger is not None else ChargerSpec()
        self.positions = network.positions()
        self.depot = network.depot.position
        self.distance: DistanceCache = (
            shared_distance_cache(network)
            if share_distances
            else DistanceCache(self.positions, self.depot)
        )
        self.memo_hits = 0
        self.memo_misses = 0
        self.invalidations = 0
        self._charge_times: Dict[int, float] = {}
        self._charging_graph: Optional[nx.Graph] = None
        self._grid_index: Optional[GridIndex] = None
        self._coverage: Dict[int, FrozenSet[int]] = {}
        self._mis: Dict[Tuple[str, int], List[int]] = {}
        self._stop_groups: Dict[
            Tuple[int, ...], Dict[int, Tuple[int, ...]]
        ] = {}
        self._aux: Dict[Tuple[str, int], nx.Graph] = {}
        self._core: Dict[Tuple[str, int], List[int]] = {}
        self._minmax: Dict[Any, Tuple[List[List[int]], float]] = {}
        self._codecs: Dict[Tuple[int, ...], NodeIndexCodec] = {}
        self._dense_matrices: Dict[Tuple[int, ...], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------

    def validate_for(
        self,
        network: WRSN,
        requests: Sequence[int],
        charger: ChargerSpec,
    ) -> None:
        """Check that a planner call matches this context's workload.

        Raises:
            ValueError: when the network, request set or charger the
                planner was invoked with differ from the ones this
                context memoized its state for.
        """
        if network is not self.network:
            raise ValueError(
                "PlanningContext was built for a different network instance"
            )
        if tuple(sorted(set(requests))) != self.requests:
            raise ValueError(
                "PlanningContext was built for a different request set"
            )
        if charger != self.charger:
            raise ValueError(
                "PlanningContext was built for a different ChargerSpec"
            )

    def invalidate(self, sensor_ids: Sequence[int]) -> None:
        """Delta-invalidate the memos that depend on changed sensors.

        The online simulation mutates residual energies between
        replans; only the residual-dependent state of the *changed*
        sensors goes stale. This drops exactly that state — the
        Eq. (1) charge times of the changed sensors, every memoized
        coverage set whose disk touches a changed sensor, and every
        ``sensor_stop_groups`` table that mentions one — and leaves the
        geometry intact: the distance cache, ``G_c``, the grid index,
        the MIS / auxiliary-graph / core memos and the dense-matrix
        backend are all position-derived and survive untouched.

        The ``_minmax`` memo keys embed every service weight, so stale
        tour solutions key-miss naturally once the changed charge times
        are recomputed — a warm replan after ``invalidate`` is
        byte-identical to a cold context rebuild (pinned by the
        100-seed parity property test and the ``sanitize --online``
        matrix).

        Args:
            sensor_ids: sensors whose residual energy changed.

        Raises:
            ValueError: when an id is absent from the network.
        """
        changed = frozenset(sensor_ids)
        unknown = sorted(s for s in changed if s not in self.network)
        if unknown:
            raise ValueError(f"sensor ids not in the network: {unknown}")
        self.invalidations += 1
        for sid in changed:
            self._charge_times.pop(sid, None)
        stale_coverage = [
            cand
            for cand, covered in self._coverage.items()
            if cand in changed or covered & changed
        ]
        for cand in stale_coverage:
            del self._coverage[cand]
        stale_groups = [
            key
            for key, table in self._stop_groups.items()
            if changed.intersection(key)
            or any(sensor in table for sensor in changed)
        ]
        for key in stale_groups:
            del self._stop_groups[key]

    # ------------------------------------------------------------------
    # Charge times (Eq. 1)
    # ------------------------------------------------------------------

    def charge_time(self, sensor_id: int) -> float:
        """Memoized Eq. (1) full-charge time of one sensor."""
        cached = self._charge_times.get(sensor_id)
        if cached is not None:
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        sensor = self.network.sensor(sensor_id)
        value = full_charge_time(
            sensor.capacity_j, sensor.residual_j, self.charger.charge_rate_w
        )
        self._charge_times[sensor_id] = value
        return value

    def charge_times_for(self, sensor_ids: Sequence[int]) -> Dict[int, float]:
        """Eq. (1) full-charge time per sensor, as a fresh dict."""
        return {sid: self.charge_time(sid) for sid in sensor_ids}

    # ------------------------------------------------------------------
    # Graph structures (steps 1-4 of Algorithm 1)
    # ------------------------------------------------------------------

    @property
    def charging_graph(self) -> nx.Graph:
        """``G_c``: the unit-disk charging graph over the request set."""
        if self._charging_graph is None:
            self.memo_misses += 1
            self._charging_graph = build_charging_graph(
                self.positions,
                self.charger.charge_radius_m,
                nodes=list(self.requests),
            )
        else:
            self.memo_hits += 1
        return self._charging_graph

    @property
    def grid_index(self) -> GridIndex:
        """Grid index over the request positions, cell = ``γ``."""
        if self._grid_index is None:
            self.memo_misses += 1
            self._grid_index = GridIndex(
                {t: self.positions[t] for t in self.requests},
                cell_size=self.charger.charge_radius_m,
            )
        else:
            self.memo_hits += 1
        return self._grid_index

    def sojourn_candidates(
        self, mis_strategy: str = "min_degree", seed: int = 0
    ) -> List[int]:
        """The MIS ``S_I`` of ``G_c`` (memoized per strategy/seed)."""
        key = (mis_strategy, seed)
        cached = self._mis.get(key)
        if cached is not None:
            self.memo_hits += 1
            return list(cached)
        self.memo_misses += 1
        result = maximal_independent_set(
            self.charging_graph, strategy=mis_strategy, seed=seed
        )
        self._mis[key] = result
        return list(result)

    def coverage_for(
        self, candidates: Sequence[int]
    ) -> Dict[int, FrozenSet[int]]:
        """``N_c⁺(v)`` per candidate, memoized per candidate.

        Matches :func:`repro.graphs.coverage.coverage_sets` with the
        request set as targets: the requested sensors within the
        charging radius of the candidate's disk, plus the candidate
        itself.
        """
        out: Dict[int, FrozenSet[int]] = {}
        radius_m = self.charger.charge_radius_m
        fresh: List[int] = []
        for cand in candidates:
            cached = self._coverage.get(cand)
            if cached is not None:
                self.memo_hits += 1
                out[cand] = cached
            else:
                self.memo_misses += 1
                fresh.append(cand)
        if fresh:
            # All uncached candidates in one vectorised bulk query;
            # membership matches per-candidate grid_index.within().
            rows = self.grid_index.within_bulk(
                [self.positions[cand] for cand in fresh], radius_m
            )
            for cand, row in zip(fresh, rows):
                covered = set(row)
                covered.add(cand)
                frozen = frozenset(covered)
                self._coverage[cand] = frozen
                out[cand] = frozen
        return out

    def sensor_stop_groups(
        self, candidates: Sequence[int]
    ) -> Dict[int, Tuple[int, ...]]:
        """Per-sensor stop-group index: sensor -> candidates whose
        charging disk contains it (memoized per candidate set).

        This is the coverage relation inverted — exactly the candidate
        generator of the conflict engine
        (:mod:`repro.core.conflicts`): two stops can violate the
        no-simultaneous-charging constraint only when some sensor lies
        in both disks, i.e. when they share a group. Consumers pass it
        to :func:`repro.core.validation.validate_schedule` (as the
        pipeline's :meth:`PlannedSchedule.validate` does) so repeated
        validation of schedules over the same candidate set skips the
        coverage inversion.
        """
        key = tuple(sorted(set(candidates)))
        cached = self._stop_groups.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        coverage = self.coverage_for(key)
        groups: Dict[int, List[int]] = {}
        for cand in key:
            for sensor in coverage[cand]:
                groups.setdefault(sensor, []).append(cand)
        frozen = {
            sensor: tuple(members) for sensor, members in groups.items()
        }
        self._stop_groups[key] = frozen
        return frozen

    def auxiliary_graph(
        self, mis_strategy: str = "min_degree", seed: int = 0
    ) -> nx.Graph:
        """The conflict graph ``H`` over ``S_I`` (memoized)."""
        key = (mis_strategy, seed)
        cached = self._aux.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        candidates = self.sojourn_candidates(mis_strategy, seed)
        graph = build_auxiliary_graph(
            candidates,
            self.coverage_for(candidates),
            self.positions,
            self.charger.charge_radius_m,
        )
        self._aux[key] = graph
        return graph

    def conflict_free_core(
        self, mis_strategy: str = "min_degree", seed: int = 0
    ) -> List[int]:
        """The MIS ``V'_H`` of ``H`` (memoized per strategy/seed)."""
        key = (mis_strategy, seed)
        cached = self._core.get(key)
        if cached is not None:
            self.memo_hits += 1
            return list(cached)
        self.memo_misses += 1
        result = maximal_independent_set(
            self.auxiliary_graph(mis_strategy, seed),
            strategy=mis_strategy,
            seed=seed,
        )
        self._core[key] = result
        return list(result)

    # ------------------------------------------------------------------
    # Array tour engine backend (DESIGN §16)
    # ------------------------------------------------------------------

    def node_codec(self, labels: Sequence[int]) -> NodeIndexCodec:
        """Memoized label ↔ dense-index codec over ``labels``.

        Keyed by the canonical (sorted) label order, so every caller
        over the same node set — whatever visit order it holds — shares
        one codec, matching the dense-matrix memo key below.
        """
        key = canonical_labels(labels)
        cached = self._codecs.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        codec = NodeIndexCodec(key)
        self._codecs[key] = codec
        return codec

    def dense_matrix_for(self, labels: Sequence[int]) -> np.ndarray:
        """Memoized dense distance matrix over ``labels`` (depot last).

        Delegates to the shared cache's
        :meth:`~repro.geometry.distcache.DistanceCache.dense_matrix`
        under the canonical label order — the same build the array
        kernels hit — and additionally pins the result in this
        context's own memo so :func:`repro.pipeline.snapshot.\
snapshot_context` can ship it to worker processes.
        """
        key = canonical_labels(labels)
        cached = self._dense_matrices.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        matrix = self.distance.dense_matrix(key)
        self._dense_matrices[key] = matrix
        return matrix

    def _warm_array_backend(
        self, nodes: Sequence[int], tsp_method: str, improve: bool
    ) -> None:
        """Pin the dense backend in this context's memos when the
        min-max solver's array kernels will consult it.

        The kernels memoize the matrix on the (process-local) distance
        cache either way; routing the build through the context memo
        here is what lets snapshots carry it across the pickle
        boundary. Gated on the same thresholds the solver applies, so
        no matrix is built that the solve would not build itself.
        """
        n = len(nodes)
        method = tsp_method
        if method == "christofides" and n > _CHRISTOFIDES_MAX_NODES:
            method = "greedy_edge"
        uses_matrix = method in ("nearest_neighbor", "greedy_edge") or (
            improve and 3 <= n <= _IMPROVE_MAX_NODES
        )
        if not uses_matrix:
            return
        key = canonical_labels(nodes)
        if dense_backend(self.distance, list(key)) is None:
            return
        self.node_codec(key)
        self.dense_matrix_for(key)

    # ------------------------------------------------------------------
    # Min-max tours (step 5 / the K-minMax baseline)
    # ------------------------------------------------------------------

    def minmax_tours(
        self,
        nodes: Sequence[int],
        num_tours: int,
        service: Mapping[int, float],
        tsp_method: str = "christofides",
        improve: bool = True,
    ) -> Tuple[List[List[int]], float]:
        """Memoized ``K``-min-max tour cover of ``nodes``.

        The memo key includes the node order, ``K``, the construction
        method and every service weight, so any change in the inputs
        falls through to :func:`repro.tours.kminmax.solve_k_minmax_tours`
        (which itself draws distances from the shared cache).
        """
        node_tuple = tuple(nodes)
        key = (
            node_tuple,
            num_tours,
            tsp_method,
            improve,
            tuple(service[v] for v in node_tuple),
        )
        cached = self._minmax.get(key)
        if cached is not None:
            self.memo_hits += 1
            tours, delay = cached
        else:
            self.memo_misses += 1
            self._warm_array_backend(node_tuple, tsp_method, improve)
            tours, delay = solve_k_minmax_tours(
                list(node_tuple),
                self.positions,
                self.depot,
                num_tours,
                self.charger.travel_speed_mps,
                service=lambda v: service[v],
                tsp_method=tsp_method,
                improve=improve,
                dist=self.distance,
            )
            self._minmax[key] = (tours, delay)
        # Callers mutate tour lists (appending stops), so hand out
        # copies and keep the memoized solution pristine.
        return [list(tour) for tour in tours], delay

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Memo and distance-cache counters, for benchmarks and the CLI."""
        return {
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "invalidations": self.invalidations,
            "minmax_solutions": len(self._minmax),
            "coverage_entries": len(self._coverage),
            "stop_group_indexes": len(self._stop_groups),
            "dense_matrices": len(self._dense_matrices),
            "node_codecs": len(self._codecs),
            **{
                f"distance_{k}": v for k, v in self.distance.stats().items()
            },
        }


__all__ = ["PlanningContext", "shared_distance_cache"]
