"""SVG visualization of deployments, schedules and trajectories.

Dependency-free SVG rendering so a user can *look* at what the
scheduler produced: sensor deployments with charging disks, per-vehicle
tours, and the conflict structure. See
:mod:`repro.viz.svg` for the drawing primitives and
:mod:`repro.viz.render` for the high-level scene builders.
"""

from repro.viz.render import render_network, render_schedule
from repro.viz.svg import SvgCanvas

__all__ = ["SvgCanvas", "render_network", "render_schedule"]
