"""High-level SVG scene builders for WRSN schedules.

* :func:`render_network` — deployment view: sensors coloured by battery
  state, base station / depot markers, optional communication edges.
* :func:`render_schedule` — schedule view: the K tours as coloured
  polylines from the depot, sojourn stops with their charging disks,
  covered sensors dimmed.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.baselines.common import BaselineSchedule
from repro.core.schedule import ChargingSchedule
from repro.network.topology import WRSN
from repro.viz.svg import SvgCanvas

#: Tour palette (colour-blind-safe-ish, cycled for K > 8).
TOUR_COLORS = (
    "#0072b2", "#d55e00", "#009e73", "#cc79a7",
    "#e69f00", "#56b4e9", "#f0e442", "#999999",
)


def _battery_color(fraction: float) -> str:
    """Green when full, amber near the threshold, red when dead."""
    if fraction <= 0.0:
        return "#c00000"
    if fraction < 0.2:
        return "#e69f00"
    return "#2e8b57"


def render_network(
    network: WRSN,
    show_comm_edges: bool = False,
    pixels_per_meter: float = 8.0,
) -> SvgCanvas:
    """Draw the deployment on a fresh canvas (call ``.render()`` or
    ``.save(path)`` on the result)."""
    canvas = SvgCanvas(
        network.field.width, network.field.height,
        pixels_per_meter=pixels_per_meter,
    )
    canvas.rect(
        0, 0, network.field.width, network.field.height, stroke="#444444"
    )
    if show_comm_edges:
        graph = network.comm_graph()
        for u, v in graph.edges:
            canvas.line(
                network.position_of(u).as_tuple(),
                network.position_of(v).as_tuple(),
                stroke="#dddddd",
                stroke_width=0.5,
            )
    for sensor in network.sensors():
        canvas.dot(
            sensor.position.x,
            sensor.position.y,
            radius_px=2.0,
            fill=_battery_color(sensor.battery.fraction),
        )
    bs = network.base_station.position
    canvas.dot(bs.x, bs.y, radius_px=6.0, fill="#000000")
    canvas.text(bs.x + 1.0, bs.y + 1.0, "BS/depot", size_px=10)
    return canvas


def render_schedule(
    network: WRSN,
    schedule: Union[ChargingSchedule, BaselineSchedule],
    charge_radius_m: Optional[float] = None,
    pixels_per_meter: float = 8.0,
) -> SvgCanvas:
    """Draw the K tours of a schedule over the deployment."""
    canvas = render_network(network, pixels_per_meter=pixels_per_meter)
    depot = network.depot.position.as_tuple()

    if isinstance(schedule, ChargingSchedule):
        radius = (
            charge_radius_m
            if charge_radius_m is not None
            else schedule.charger.charge_radius_m
        )
        tours = schedule.tours
        for k, tour in enumerate(tours):
            color = TOUR_COLORS[k % len(TOUR_COLORS)]
            points = [depot]
            points.extend(
                network.position_of(node).as_tuple() for node in tour
            )
            points.append(depot)
            canvas.polyline(points, stroke=color, stroke_width=1.5)
            for node in tour:
                pos = network.position_of(node)
                canvas.circle(
                    pos.x, pos.y, radius, stroke=color,
                    stroke_width=0.8, opacity=0.6,
                )
            if tour:
                first = network.position_of(tour[0])
                canvas.text(
                    first.x + 0.5, first.y + 0.5, f"MCV {k}",
                    size_px=10, fill=color,
                )
    else:
        for k, itinerary in enumerate(schedule.itineraries):
            color = TOUR_COLORS[k % len(TOUR_COLORS)]
            points = [depot]
            points.extend(
                network.position_of(v.sensor_id).as_tuple()
                for v in itinerary
            )
            points.append(depot)
            canvas.polyline(points, stroke=color, stroke_width=1.5)
            if itinerary:
                first = network.position_of(itinerary[0].sensor_id)
                canvas.text(
                    first.x + 0.5, first.y + 0.5, f"MCV {k}",
                    size_px=10, fill=color,
                )
    return canvas
