"""A minimal SVG canvas.

Just enough of SVG for this library's figures: circles, lines,
polylines, rectangles and text, with a y-flip so world coordinates
(metres, origin bottom-left) render the way network figures are drawn.
No third-party dependencies; output is a plain XML string.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple
from xml.sax.saxutils import escape

Color = str


class SvgCanvas:
    """An SVG drawing surface over a rectangular world region.

    Args:
        world_width / world_height: extent of the world region, metres.
        pixels_per_meter: output scale.
        margin_px: blank border around the drawing.
    """

    def __init__(
        self,
        world_width: float,
        world_height: float,
        pixels_per_meter: float = 8.0,
        margin_px: float = 20.0,
    ):
        if world_width <= 0 or world_height <= 0:
            raise ValueError("world dimensions must be positive")
        if pixels_per_meter <= 0:
            raise ValueError("scale must be positive")
        self.world_width = world_width
        self.world_height = world_height
        self.scale = pixels_per_meter
        self.margin = margin_px
        self._elements: List[str] = []

    # ------------------------------------------------------------------

    @property
    def width_px(self) -> float:
        return self.world_width * self.scale + 2 * self.margin

    @property
    def height_px(self) -> float:
        return self.world_height * self.scale + 2 * self.margin

    def to_px(self, x: float, y: float) -> Tuple[float, float]:
        """World (metres, y-up) to pixel (y-down) coordinates."""
        px = self.margin + x * self.scale
        py = self.margin + (self.world_height - y) * self.scale
        return (px, py)

    # ------------------------------------------------------------------

    def circle(
        self,
        x: float,
        y: float,
        radius_m: float,
        fill: Color = "none",
        stroke: Color = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """A circle at world position with world-scaled radius."""
        cx, cy = self.to_px(x, y)
        self._elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" '
            f'r="{radius_m * self.scale:.2f}" fill="{fill}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}" '
            f'opacity="{opacity}"/>'
        )

    def dot(
        self, x: float, y: float, radius_px: float = 2.5,
        fill: Color = "black",
    ) -> None:
        """A fixed-pixel-size marker at a world position."""
        cx, cy = self.to_px(x, y)
        self._elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{radius_px:.2f}" '
            f'fill="{fill}"/>'
        )

    def line(
        self,
        a: Tuple[float, float],
        b: Tuple[float, float],
        stroke: Color = "black",
        stroke_width: float = 1.0,
        dashed: bool = False,
    ) -> None:
        x1, y1 = self.to_px(*a)
        x2, y2 = self.to_px(*b)
        dash = ' stroke-dasharray="4 3"' if dashed else ""
        self._elements.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" '
            f'y2="{y2:.2f}" stroke="{stroke}" '
            f'stroke-width="{stroke_width}"{dash}/>'
        )

    def polyline(
        self,
        points: Sequence[Tuple[float, float]],
        stroke: Color = "black",
        stroke_width: float = 1.5,
        opacity: float = 1.0,
    ) -> None:
        if len(points) < 2:
            return
        px = " ".join(
            "{:.2f},{:.2f}".format(*self.to_px(x, y)) for x, y in points
        )
        self._elements.append(
            f'<polyline points="{px}" fill="none" stroke="{stroke}" '
            f'stroke-width="{stroke_width}" opacity="{opacity}"/>'
        )

    def rect(
        self,
        x: float,
        y: float,
        width_m: float,
        height_m: float,
        fill: Color = "none",
        stroke: Color = "black",
    ) -> None:
        """Axis-aligned rectangle; (x, y) is the bottom-left corner."""
        px, py = self.to_px(x, y + height_m)
        self._elements.append(
            f'<rect x="{px:.2f}" y="{py:.2f}" '
            f'width="{width_m * self.scale:.2f}" '
            f'height="{height_m * self.scale:.2f}" fill="{fill}" '
            f'stroke="{stroke}"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size_px: float = 11.0,
        fill: Color = "black",
        anchor: str = "start",
    ) -> None:
        px, py = self.to_px(x, y)
        self._elements.append(
            f'<text x="{px:.2f}" y="{py:.2f}" font-size="{size_px}" '
            f'fill="{fill}" text-anchor="{anchor}" '
            f'font-family="sans-serif">{escape(content)}</text>'
        )

    # ------------------------------------------------------------------

    def render(self) -> str:
        """The complete SVG document."""
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width_px:.0f}" height="{self.height_px:.0f}" '
            f'viewBox="0 0 {self.width_px:.0f} {self.height_px:.0f}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n'
            f"  {body}\n"
            f"</svg>\n"
        )

    def save(self, path) -> None:
        """Write the document to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.render())
