"""Charging-time arithmetic and mobile-charger parameters.

Implements the paper's Eqs. (1) and (2):

* Eq. (1): the time to charge sensor ``v`` to full is
  ``t_v = (C_v - RE_v) / η`` where ``η`` is the charger's rate.
* Eq. (2): an MCV sojourning at location ``v`` must stay
  ``τ(v) = max{t_u : u ∈ N_c⁺(v)}`` so every sensor in its charging
  disk finishes.

:class:`ChargerSpec` bundles the three MCV parameters the paper uses —
charging rate ``η`` (2 W), charging radius ``γ`` (2.7 m) and travel
speed ``s`` (1 m/s) — so they travel together through every API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.geometry.point import PointLike
from repro.geometry.distance import euclidean

#: Paper defaults (Section VI-A).
DEFAULT_CHARGE_RATE_W = 2.0
DEFAULT_CHARGE_RADIUS_M = 2.7
DEFAULT_TRAVEL_SPEED_MPS = 1.0


@dataclass(frozen=True)
class ChargerSpec:
    """Parameters of one homogeneous mobile charging vehicle (MCV)."""

    charge_rate_w: float = DEFAULT_CHARGE_RATE_W
    charge_radius_m: float = DEFAULT_CHARGE_RADIUS_M
    travel_speed_mps: float = DEFAULT_TRAVEL_SPEED_MPS

    def __post_init__(self) -> None:
        if self.charge_rate_w <= 0:
            raise ValueError(f"charge rate must be positive: {self.charge_rate_w}")
        if self.charge_radius_m <= 0:
            raise ValueError(
                f"charge radius must be positive: {self.charge_radius_m}"
            )
        if self.travel_speed_mps <= 0:
            raise ValueError(
                f"travel speed must be positive: {self.travel_speed_mps}"
            )

    def travel_time(self, a: PointLike, b: PointLike) -> float:
        """Seconds for the MCV to travel from ``a`` to ``b``."""
        # Point-based public API: one segment, no labels to cache by.
        return euclidean(a, b) / self.travel_speed_mps  # repro-lint: disable=euclidean-call


def full_charge_time(
    capacity_j: float, residual_j: float, charge_rate_w: float = DEFAULT_CHARGE_RATE_W
) -> float:
    """Eq. (1): seconds to charge a sensor from ``residual_j`` to full.

    Raises:
        ValueError: on a negative residual, a residual above capacity,
            or a non-positive rate.
    """
    if charge_rate_w <= 0:
        raise ValueError(f"charge rate must be positive: {charge_rate_w}")
    if residual_j < 0:
        raise ValueError(f"residual energy must be non-negative: {residual_j}")
    if residual_j > capacity_j:
        raise ValueError(
            f"residual {residual_j} J exceeds capacity {capacity_j} J"
        )
    return (capacity_j - residual_j) / charge_rate_w


def sojourn_time_bound(charge_times: Iterable[float]) -> float:
    """Eq. (2): ``τ(v) = max`` of the full-charge times in the disk.

    ``charge_times`` are the ``t_u`` values of the sensors in
    ``N_c⁺(v)``. An empty disk (nothing left to charge) yields 0.
    """
    bound = 0.0
    for t in charge_times:
        if t < 0:
            raise ValueError(f"charge times must be non-negative, got {t}")
        if t > bound:
            bound = t
    return bound


def charge_times_for(
    sensors: Iterable,
    charge_rate_w: float = DEFAULT_CHARGE_RATE_W,
) -> Mapping:
    """Map each sensor object to its Eq. (1) full-charge time.

    ``sensors`` must expose ``id`` and a ``battery`` with ``capacity_j``
    and ``level_j`` (the :class:`repro.network.sensor.Sensor` shape).
    """
    return {
        s.id: full_charge_time(s.battery.capacity_j, s.battery.level_j, charge_rate_w)
        for s in sensors
    }
