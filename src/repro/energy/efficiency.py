"""Distance-aware charging efficiency (beyond-the-paper extension).

The paper assumes a sensor anywhere inside the charging radius ``γ``
receives the full charger rate ``η``. Physically, received power decays
with distance from the transmitter coil; the multi-node charging
literature (e.g. the paper's reference [18], Ma et al.) models the
received power of a sensor at distance ``d`` as a decreasing function
``η · eff(d)`` with ``eff(0) = 1`` and ``eff(γ) > 0``.

This module provides pluggable efficiency models and the pairwise
charge-time function they induce:

``t(u at stop v) = (C_u − RE_u) / (η · eff(d(u, v)))``

The core scheduler accepts such a pairwise function (see
:func:`repro.core.appro.appro_schedule`'s ``efficiency`` parameter);
under the constant model everything reduces exactly to the paper's
Eq. (1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Protocol

from repro.energy.charging import ChargerSpec
from repro.geometry.distance import euclidean
from repro.geometry.point import Point


class EfficiencyModel(Protocol):
    """Received-power fraction as a function of charger distance."""

    def efficiency(self, distance_m: float) -> float:
        """Fraction of ``η`` received at ``distance_m`` (in (0, 1])."""
        ...


@dataclass(frozen=True)
class ConstantEfficiency:
    """The paper's model: full rate anywhere inside the disk."""

    def efficiency(self, distance_m: float) -> float:
        if distance_m < 0:
            raise ValueError(f"distance must be non-negative: {distance_m}")
        return 1.0


@dataclass(frozen=True)
class QuadraticDecay:
    """Quadratic efficiency decay, floored at the disk boundary.

    ``eff(d) = 1 − (1 − floor) · (d / radius)²`` — full rate at the
    stop itself, ``floor`` of the rate at distance ``radius``. The
    quadratic shape follows the inverse-square character of radiated
    power over the short ranges involved.

    Attributes:
        radius_m: the charging radius ``γ``.
        floor: efficiency at the boundary, in (0, 1].
    """

    radius_m: float = 2.7
    floor: float = 0.3

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError(f"radius must be positive: {self.radius_m}")
        if not 0.0 < self.floor <= 1.0:
            raise ValueError(f"floor must be in (0, 1]: {self.floor}")

    def efficiency(self, distance_m: float) -> float:
        if distance_m < 0:
            raise ValueError(f"distance must be non-negative: {distance_m}")
        # Clamp beyond the radius to the boundary value; the scheduler
        # never charges outside the disk anyway.
        frac = min(distance_m / self.radius_m, 1.0)
        return 1.0 - (1.0 - self.floor) * frac * frac


def pairwise_charge_time_fn(
    positions: Mapping[int, Point],
    deficits_j: Mapping[int, float],
    charger: ChargerSpec,
    model: EfficiencyModel,
) -> Callable[[int, int], float]:
    """Build ``(sensor, stop) -> charge seconds`` under a model.

    Args:
        positions: id -> position for sensors and stops.
        deficits_j: per-sensor energy deficit ``C_u − RE_u``.
        charger: supplies the nominal rate ``η``.
        model: the efficiency model.

    Returns:
        A function mapping ``(sensor_id, stop_id)`` to the seconds the
        stop must charge for that sensor to fill up.
    """

    def charge_time(sensor_id: int, stop_id: int) -> float:
        deficit = deficits_j[sensor_id]
        if deficit <= 0:
            return 0.0
        # In-disk pairs only (≤ charge radius); not worth a cache.
        d = euclidean(positions[sensor_id], positions[stop_id])  # repro-lint: disable=euclidean-call
        eff = model.efficiency(d)
        return deficit / (charger.charge_rate_w * eff)

    return charge_time
