"""Sensor energy-consumption model.

The paper's evaluation "adopts a real sensor energy consumption model
from [Li & Mohapatra 2007]" — the energy-hole analysis in which sensors
closer to the base station relay traffic for the rest of the network
and therefore deplete faster. We reproduce that behaviour with the
standard first-order radio model:

* transmitting ``b`` bits over distance ``d`` costs
  ``b * (e_elec + e_amp * d**alpha)`` joules,
* receiving ``b`` bits costs ``b * e_elec`` joules,
* sensing adds a constant per-bit cost ``e_sense``.

A sensor's *load* is its own sensing rate plus the rates of every
descendant routing through it on the shortest-path tree to the base
station (computed in :mod:`repro.network.routing`). Power draw is then
a deterministic function of load and next-hop distance, which lets the
simulator compute depletion times in closed form instead of ticking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import approx_zero


@dataclass(frozen=True)
class RadioModel:
    """First-order radio energy parameters.

    The constants follow the shape of the classic first-order model
    (Heinzelman et al.: ~50 nJ/bit electronics, ~100 pJ/bit/m²
    free-space amplifier), scaled to 0.5x so that the paper's
    evaluation regime is reproduced: at ``n = 1000`` sensors and
    ``b_max = 50 kbps`` the network's total recharge demand sits just
    above the one-to-one service capacity of ``K = 2`` chargers. That
    is the operating point the paper's figures imply — the one-to-one
    baselines saturate and accumulate dead time while the multi-node
    ``Appro`` keeps up — and the absolute constants of the cited
    consumption model are not given in the paper. See EXPERIMENTS.md
    for the calibration.
    """

    e_elec_j_per_bit: float = 25e-9
    e_amp_j_per_bit_m: float = 50e-12
    path_loss_exponent: float = 2.0
    e_sense_j_per_bit: float = 2.5e-9
    idle_power_w: float = 0.0

    def __post_init__(self) -> None:
        if min(self.e_elec_j_per_bit, self.e_amp_j_per_bit_m,
               self.e_sense_j_per_bit) < 0:
            raise ValueError("radio energy constants must be non-negative")
        if self.path_loss_exponent < 1.0:
            raise ValueError(
                f"path loss exponent must be >= 1, got {self.path_loss_exponent}"
            )
        if self.idle_power_w < 0:
            raise ValueError("idle power must be non-negative")

    def tx_energy_per_bit(self, distance_m: float) -> float:
        """Joules to transmit one bit over ``distance_m`` metres."""
        if distance_m < 0:
            raise ValueError(f"distance must be non-negative, got {distance_m}")
        return (
            self.e_elec_j_per_bit
            + self.e_amp_j_per_bit_m * distance_m**self.path_loss_exponent
        )

    def rx_energy_per_bit(self) -> float:
        """Joules to receive one bit."""
        return self.e_elec_j_per_bit


def total_load_bps(own_rate_bps: float, relayed_rate_bps: float) -> float:
    """Total outgoing traffic of a sensor in bits per second."""
    if own_rate_bps < 0 or relayed_rate_bps < 0:
        raise ValueError("rates must be non-negative")
    return own_rate_bps + relayed_rate_bps


def sensor_power_draw(
    model: RadioModel,
    own_rate_bps: float,
    relayed_rate_bps: float,
    next_hop_distance_m: float,
) -> float:
    """Steady-state power draw of a sensor in watts.

    The sensor senses at ``own_rate_bps``, receives ``relayed_rate_bps``
    from its routing-tree children, and transmits the sum over
    ``next_hop_distance_m`` to its parent. Constant rates give constant
    power, so battery depletion is linear in time — exactly the
    property the closed-form simulator relies on.
    """
    out_bps = total_load_bps(own_rate_bps, relayed_rate_bps)
    sensing_w = own_rate_bps * model.e_sense_j_per_bit
    rx_w = relayed_rate_bps * model.rx_energy_per_bit()
    tx_w = out_bps * model.tx_energy_per_bit(next_hop_distance_m)
    return sensing_w + rx_w + tx_w + model.idle_power_w


def lifetime_seconds(
    residual_j: float,
    power_draw_w: float,
) -> float:
    """Seconds until a battery with ``residual_j`` joules empties.

    Returns ``inf`` for a zero draw.
    """
    if residual_j < 0:
        raise ValueError(f"residual energy must be non-negative: {residual_j}")
    if power_draw_w < 0:
        raise ValueError(f"power draw must be non-negative: {power_draw_w}")
    if approx_zero(power_draw_w):
        return float("inf")
    return residual_j / power_draw_w
