"""Energy substrate: batteries, consumption model, charging math.

* :mod:`repro.energy.battery` — rechargeable battery state with
  capacity, residual level and threshold tests (the paper's 20 %
  charging-request threshold).
* :mod:`repro.energy.consumption` — a first-order radio model with
  relay load, reproducing the qualitative load distribution of the
  Li–Mohapatra energy-hole model the paper's evaluation cites.
* :mod:`repro.energy.charging` — the charging-time arithmetic of
  Eqs. (1)–(2): full-charge durations and multi-node sojourn bounds.
"""

from repro.energy.battery import Battery
from repro.energy.charging import (
    ChargerSpec,
    full_charge_time,
    sojourn_time_bound,
)
from repro.energy.consumption import (
    RadioModel,
    sensor_power_draw,
    total_load_bps,
)

__all__ = [
    "Battery",
    "ChargerSpec",
    "RadioModel",
    "full_charge_time",
    "sensor_power_draw",
    "sojourn_time_bound",
    "total_load_bps",
]
