"""Charging policies: full vs partial charging.

The paper charges every requested sensor to *full* capacity
(Eq. (1)). The adjacent literature (Liang et al., IEEE/ACM ToN 2017 —
the paper's reference [15]) also studies the *partial charging model*,
where a charger tops a sensor up to a target fraction and moves on:
rounds shorten, requests recur sooner. :class:`ChargingPolicy`
abstracts that choice so the simulator and benchmarks can compare both
regimes (see ``benchmarks/test_ablation_policy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.charging import full_charge_time


@dataclass(frozen=True)
class ChargingPolicy:
    """How full a sensor is charged per visit.

    Attributes:
        target_fraction: battery fraction to charge up to (1.0 = the
            paper's full-charging model).
    """

    target_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target_fraction <= 1.0:
            raise ValueError(
                f"target fraction must be in (0, 1], got "
                f"{self.target_fraction}"
            )

    @property
    def is_full(self) -> bool:
        return self.target_fraction >= 1.0

    def target_level_j(self, capacity_j: float) -> float:
        """Battery level a visit charges up to."""
        return self.target_fraction * capacity_j

    def charge_time(
        self, capacity_j: float, residual_j: float, charge_rate_w: float
    ) -> float:
        """Seconds to charge from ``residual_j`` to the policy target.

        Zero when the sensor is already at or above the target.
        """
        target = self.target_level_j(capacity_j)
        if residual_j >= target:
            return 0.0
        # Charging from residual to target at the charger's rate; the
        # full-charging special case reduces to Eq. (1).
        return full_charge_time(target, residual_j, charge_rate_w)


#: The paper's model.
FULL_CHARGE = ChargingPolicy(target_fraction=1.0)

#: A common partial-charging configuration (e.g. 80% target keeps
#: sensors out of the slow constant-voltage tail in real batteries and
#: shortens rounds at the cost of more frequent requests).
PARTIAL_80 = ChargingPolicy(target_fraction=0.8)
