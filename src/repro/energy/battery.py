"""Rechargeable sensor battery model.

The paper equips every sensor with a battery of capacity
``C_v = 10.8 kJ`` and triggers a charging request when the residual
energy falls below a threshold (20 % of capacity in the evaluation).
:class:`Battery` tracks the residual level in joules and exposes the
deplete / recharge operations the simulator drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import approx_zero

#: Battery capacity used throughout the paper's evaluation (Section VI-A).
DEFAULT_CAPACITY_J = 10_800.0

#: Residual-energy fraction below which a sensor requests charging.
DEFAULT_REQUEST_THRESHOLD = 0.2


@dataclass
class Battery:
    """Mutable battery state of a single sensor.

    Attributes:
        capacity_j: full capacity ``C_v`` in joules.
        level_j: current residual energy ``RE_v`` in joules.
    """

    capacity_j: float = DEFAULT_CAPACITY_J
    level_j: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_j}")
        if self.level_j < 0:  # default: start full
            self.level_j = self.capacity_j
        if self.level_j > self.capacity_j:
            raise ValueError(
                f"level {self.level_j} J exceeds capacity {self.capacity_j} J"
            )

    @property
    def fraction(self) -> float:
        """Residual energy as a fraction of capacity, in ``[0, 1]``."""
        return self.level_j / self.capacity_j

    @property
    def deficit_j(self) -> float:
        """Energy needed to reach full capacity, ``C_v - RE_v``."""
        return self.capacity_j - self.level_j

    def is_depleted(self) -> bool:
        """Whether the battery is empty (the sensor is dead)."""
        return self.level_j <= 0.0

    def below_threshold(self, threshold: float = DEFAULT_REQUEST_THRESHOLD) -> bool:
        """Whether the residual fraction is below ``threshold``."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        return self.fraction < threshold

    def deplete(self, energy_j: float) -> float:
        """Drain ``energy_j`` joules, clamping at empty.

        Returns:
            The energy actually drained (less than ``energy_j`` when the
            battery empties first).
        """
        if energy_j < 0:
            raise ValueError(f"cannot deplete a negative amount: {energy_j}")
        drained = min(energy_j, self.level_j)
        self.level_j -= drained
        return drained

    def recharge(self, energy_j: float) -> float:
        """Add ``energy_j`` joules, clamping at capacity.

        Returns:
            The energy actually absorbed.
        """
        if energy_j < 0:
            raise ValueError(f"cannot recharge a negative amount: {energy_j}")
        absorbed = min(energy_j, self.deficit_j)
        # level + (capacity - level) can round above capacity; clamp.
        self.level_j = min(self.capacity_j, self.level_j + absorbed)
        return absorbed

    def recharge_full(self) -> float:
        """Charge to full capacity; returns the energy absorbed."""
        return self.recharge(self.deficit_j)

    def time_until_fraction(self, fraction: float, power_draw_w: float) -> float:
        """Seconds of constant ``power_draw_w`` until the level reaches
        ``fraction`` of capacity.

        Returns ``0.0`` if already at or below the target fraction, and
        ``inf`` if the power draw is zero.
        """
        if power_draw_w < 0:
            raise ValueError(f"power draw must be non-negative: {power_draw_w}")
        target_j = fraction * self.capacity_j
        if self.level_j <= target_j:
            return 0.0
        if approx_zero(power_draw_w):
            return float("inf")
        return (self.level_j - target_j) / power_draw_w

    def copy(self) -> "Battery":
        """An independent copy of this battery's state."""
        return Battery(capacity_j=self.capacity_j, level_j=self.level_j)
