"""Unit conventions and tolerance helpers for physical quantities.

The paper mixes four physical dimensions — energy (J), power (W), time
(s) and distance (m) — and the type system cannot tell them apart: they
are all ``float``. The repository therefore enforces a *naming*
discipline instead, checked statically by :mod:`repro.lint` (rule
``unit-suffix``):

* a name that denotes a physical quantity carries a unit token as one
  of its ``_``-separated components — ``capacity_j``, ``power_draw_w``,
  ``duration_s``, ``charge_radius_m``, ``travel_speed_mps``,
  ``b_max_bps``, ``e_elec_j_per_bit``;
* exact ``==`` / ``!=`` on such quantities is forbidden (rule
  ``float-eq``); use :func:`approx_eq` / :func:`approx_zero` so every
  tolerance is explicit and greppable.

This module is the canonical registry of those conventions (the linter
imports :data:`QUANTITY_KEYWORDS` and :data:`UNIT_TOKENS` rather than
hard-coding its own copy) plus the tolerance helpers the rest of the
code uses in place of exact float comparison.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet

#: Default absolute tolerance for "is this quantity zero?" tests.
#: Chosen far below any physically meaningful value in the paper's
#: regime (joules, watts, seconds, metres are all >= 1e-6 in practice)
#: and far above accumulated float rounding error.
ZERO_EPS = 1e-12

#: Default relative tolerance for comparing two nonzero quantities.
REL_EPS = 1e-9

#: Unit tokens accepted as a name component, per physical dimension.
#: A compound name satisfies the discipline when any of its
#: ``_``-separated components is a token of the right dimension
#: (``e_amp_j_per_bit_m`` carries both an energy and a distance token).
UNIT_TOKENS: Dict[str, FrozenSet[str]] = {
    "energy": frozenset({"j", "kj", "mj", "wh"}),
    "power": frozenset({"w", "mw", "kw"}),
    "time": frozenset({"s", "ms", "h", "days"}),
    "distance": frozenset({"m", "km", "mm", "px"}),
    "speed": frozenset({"mps", "kmh"}),
    "rate": frozenset({"bps", "kbps"}),
}

#: Name fragments that mark an identifier as denoting a quantity of the
#: given dimension. The linter requires such identifiers (when declared
#: as ``float`` parameters or attributes) to carry a matching unit
#: token from :data:`UNIT_TOKENS`.
QUANTITY_KEYWORDS: Dict[str, FrozenSet[str]] = {
    "energy": frozenset({"energy", "joule", "residual", "capacity",
                         "deficit"}),
    "power": frozenset({"power", "watt", "wattage"}),
    "time": frozenset({"duration", "delay", "lifetime", "deadline",
                       "sojourn_time", "travel_time", "wait_time",
                       "charge_time"}),
    "distance": frozenset({"distance", "radius"}),
    "speed": frozenset({"speed", "velocity"}),
    "rate": frozenset({"bitrate", "data_rate"}),
}


def approx_eq(a: float, b: float, rel_eps: float = REL_EPS,
              abs_eps: float = ZERO_EPS) -> bool:
    """Tolerant equality for two physical quantities.

    ``True`` when ``a`` and ``b`` agree to within ``rel_eps``
    relatively or ``abs_eps`` absolutely (whichever is looser), the
    standard combined test of :func:`math.isclose`.
    """
    return math.isclose(a, b, rel_tol=rel_eps, abs_tol=abs_eps)


def approx_zero(x: float, abs_eps: float = ZERO_EPS) -> bool:
    """Whether a physical quantity is zero to within ``abs_eps``.

    The canonical replacement for ``x == 0.0`` sentinels on energy,
    power, time and distance values: a draw of ``1e-15`` W *is* "no
    draw" for every purpose in this codebase.
    """
    return abs(x) <= abs_eps


def approx_le(a: float, b: float, rel_eps: float = REL_EPS,
              abs_eps: float = ZERO_EPS) -> bool:
    """``a <= b`` up to tolerance (``a`` may exceed ``b`` by rounding)."""
    return a <= b or approx_eq(a, b, rel_eps=rel_eps, abs_eps=abs_eps)


def approx_ge(a: float, b: float, rel_eps: float = REL_EPS,
              abs_eps: float = ZERO_EPS) -> bool:
    """``a >= b`` up to tolerance (``a`` may undershoot by rounding)."""
    return a >= b or approx_eq(a, b, rel_eps=rel_eps, abs_eps=abs_eps)


__all__ = [
    "QUANTITY_KEYWORDS",
    "REL_EPS",
    "UNIT_TOKENS",
    "ZERO_EPS",
    "approx_eq",
    "approx_ge",
    "approx_le",
    "approx_zero",
]
