"""End-to-end smoke test for the always-on planning daemon.

Exercises the daemon exactly the way production would — as a separate
OS process behind a unix socket — and checks the full robustness
contract in one pass:

1. start ``repro daemon --socket`` as a subprocess and wait for the
   socket to appear;
2. submit a small mixed job batch over the socket
   (``repro-job/1`` JSONL in, ``repro-result/1`` JSONL out, one line
   per line in input order);
3. byte-compare every planned result (schedule + longest delay,
   canonical JSON) against serial :func:`repro.pipeline.run_planner`
   on the same jobs — the daemon's warm-context/coalescing machinery
   must be invisible in the output;
4. fetch the in-stream ``{"op": "status"}`` document and sanity-check
   its ledger;
5. SIGTERM the daemon and require a graceful drain: exit code 0 and a
   final ``repro-daemon-status/1`` document on stderr.

Run from CI (or by hand) as::

    python tools/daemon_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.io import dump_jsonl_line, schedule_to_dict  # noqa: E402
from repro.network.topology import random_wrsn  # noqa: E402
from repro.pipeline import run_planner  # noqa: E402
from repro.serve import PlanJob  # noqa: E402
from repro.serve.jobs import jobs_to_jsonl  # noqa: E402
from repro.serve.transport import request, request_status  # noqa: E402

SOCKET_DEADLINE_S = 30.0
DRAIN_DEADLINE_S = 60.0


def build_jobs(num_sensors: int = 25, seed: int = 0) -> List[PlanJob]:
    """A small batch: two planners x two charger counts, one network."""
    net = random_wrsn(num_sensors=num_sensors, seed=seed + 77)
    rng = np.random.default_rng(seed + 78)
    net.set_residuals(
        {
            sid: float(rng.uniform(0.0, 0.2)) * net.sensor(sid).capacity_j
            for sid in net.all_sensor_ids()
        }
    )
    everyone = tuple(net.all_sensor_ids())
    jobs: List[PlanJob] = []
    for planner in ("Appro", "K-EDF"):
        for k in (1, 2):
            jobs.append(
                PlanJob(net, everyone, k, planner, f"smoke-{len(jobs)}")
            )
    return jobs


def parity_line(job_id: str, longest_delay_s: float, schedule: dict) -> str:
    """Canonical byte string for the deterministic fields of a result."""
    return dump_jsonl_line(
        {
            "id": job_id,
            "longest_delay_s": longest_delay_s,
            "schedule": schedule,
        }
    )


def serial_baseline(jobs: List[PlanJob]) -> List[str]:
    """Plan every job with plain run_planner; one parity line each."""
    lines = []
    for job in jobs:
        planned = run_planner(
            job.planner, job.network, job.request_ids, job.num_chargers
        )
        lines.append(
            parity_line(
                job.job_id,
                planned.longest_delay(),
                schedule_to_dict(planned, algorithm=job.planner),
            )
        )
    return lines


def spawn_daemon(socket_path: str) -> subprocess.Popen:
    """Start ``repro daemon --socket`` and wait for the socket."""
    env = dict(os.environ)
    if _SRC.is_dir():
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            f"{_SRC}{os.pathsep}{existing}" if existing else str(_SRC)
        )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "import sys; from repro.cli.main import main; "
            "sys.exit(main(sys.argv[1:]))",
            "daemon",
            "--socket",
            socket_path,
            "--workers",
            "1",
        ],
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    deadline = time.monotonic() + SOCKET_DEADLINE_S
    while not os.path.exists(socket_path):
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited early (rc={proc.returncode}): "
                f"{proc.stderr.read()}"
            )
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError(
                f"daemon socket never appeared at {socket_path}"
            )
        time.sleep(0.05)
    return proc


def main() -> int:
    jobs = build_jobs()
    print(f"planning {len(jobs)} jobs serially for the baseline ...")
    expected = serial_baseline(jobs)

    with tempfile.TemporaryDirectory() as tmp:
        socket_path = os.path.join(tmp, "daemon.sock")
        proc = spawn_daemon(socket_path)
        try:
            print(f"daemon up (pid {proc.pid}); submitting batch ...")
            responses = request(
                socket_path, jobs_to_jsonl(jobs).splitlines()
            )
            if len(responses) != len(jobs):
                raise SystemExit(
                    f"FAIL: {len(jobs)} jobs in, "
                    f"{len(responses)} responses out"
                )
            for job, expect, line in zip(jobs, expected, responses):
                record = json.loads(line)
                if record.get("id") != job.job_id:
                    raise SystemExit(
                        f"FAIL: response order broken — expected "
                        f"{job.job_id}, got {record.get('id')}"
                    )
                if record.get("status") != "ok":
                    raise SystemExit(
                        f"FAIL: {job.job_id} status {record.get('status')}"
                        f" ({record.get('error')})"
                    )
                got = parity_line(
                    record["id"],
                    record["longest_delay_s"],
                    record["schedule"],
                )
                if got != expect:
                    raise SystemExit(
                        f"FAIL: {job.job_id} diverges from serial "
                        f"run_planner:\n  daemon : {got[:200]}\n"
                        f"  serial : {expect[:200]}"
                    )
            print(f"parity ok: {len(jobs)} daemon results byte-identical "
                  f"to serial run_planner")

            status = request_status(socket_path)
            if status.get("format") != "repro-daemon-status/1":
                raise SystemExit(
                    f"FAIL: bad status format {status.get('format')!r}"
                )
            submitted = status["counters"]["submitted"]
            if submitted < len(jobs):
                raise SystemExit(
                    f"FAIL: status ledger saw {submitted} jobs, "
                    f"expected >= {len(jobs)}"
                )
            print(f"status ok: {submitted} submitted, "
                  f"context hit rate "
                  f"{status['context_cache']['hit_rate']:.0%}")

            print("sending SIGTERM; expecting a graceful drain ...")
            proc.send_signal(signal.SIGTERM)
            try:
                _, stderr = proc.communicate(timeout=DRAIN_DEADLINE_S)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise SystemExit("FAIL: daemon hung on SIGTERM drain")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL: daemon exited rc={proc.returncode}:\n{stderr}"
        )
    if "draining" not in stderr:
        raise SystemExit(
            f"FAIL: no drain notice on stderr:\n{stderr}"
        )
    final = json.loads(stderr.strip().splitlines()[-1])
    if final.get("format") != "repro-daemon-status/1":
        raise SystemExit(
            "FAIL: final stderr line is not a status document"
        )
    print("drain ok: exit 0, final status document on stderr")
    print("daemon smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
