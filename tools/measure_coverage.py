"""Measure line coverage of src/repro under the tier-1 suite.

Stdlib-only stand-in for coverage.py (which is not installed in every
dev container): a ``sys.settrace`` hook counts executed lines of
``src/repro`` modules, the denominator comes from compiling each
module and collecting the line numbers of every nested code object.
Tracing per code object is switched off once all its lines have been
seen, so the overhead decays as coverage saturates.

Usage: PYTHONPATH=src python tools/measure_coverage.py [pytest args]

The number this prints is the basis for the ``--cov-fail-under`` floor
in CI (which uses the real pytest-cov on GitHub runners).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src" / "repro"


def executable_lines(path: Path) -> set:
    """Line numbers of every executable line in one module."""
    try:
        code = compile(path.read_text(), str(path), "exec")
    except SyntaxError:
        return set()
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _, _, line in obj.co_lines():
            if line is not None:
                lines.add(line)
        for const in obj.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main() -> int:
    files = sorted(SRC.rglob("*.py"))
    want = {str(p): executable_lines(p) for p in files}
    seen = {name: set() for name in want}
    done = set()

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if filename not in want or filename in done:
            return None
        hits = seen[filename]

        def local(frame, event, arg):
            if event == "line":
                hits.add(frame.f_lineno)
            return local

        return local

    sys.settrace(tracer)
    import pytest

    args = sys.argv[1:] or ["-q", "-p", "no:cacheprovider"]
    exit_code = pytest.main(args)
    sys.settrace(None)
    if exit_code != 0:
        print(f"pytest exited {exit_code}; coverage not trustworthy")
        return int(exit_code)

    total_want = 0
    total_seen = 0
    per_file = []
    for name in sorted(want):
        w = want[name]
        s = seen[name] & w
        total_want += len(w)
        total_seen += len(s)
        if w:
            per_file.append(
                (len(s) / len(w), os.path.relpath(name, ROOT), len(s), len(w))
            )
    per_file.sort()
    for frac, name, s, w in per_file:
        print(f"{100 * frac:6.1f}%  {s:5d}/{w:5d}  {name}")
    pct = 100.0 * total_seen / total_want if total_want else 0.0
    print(f"TOTAL {total_seen}/{total_want} = {pct:.2f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
